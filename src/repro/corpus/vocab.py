"""Value vocabularies backing the synthetic value generators.

These word lists play the role of the real-world entity distributions found
in WebTables.  They are intentionally overlapping across related semantic
types (e.g. cities appear both as ``city`` and ``birthPlace`` values, people
names appear as ``name``, ``person``, ``creator``, ``director`` ...), because
that overlap is precisely the ambiguity Sato's contextual signals resolve.
"""

from __future__ import annotations

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "CITIES",
    "CITY_INFO",
    "COUNTRIES",
    "US_STATES",
    "COUNTIES",
    "CONTINENTS",
    "NATIONALITIES",
    "LANGUAGES",
    "RELIGIONS",
    "CURRENCIES",
    "TEAMS",
    "CLUBS",
    "SPORT_POSITIONS",
    "COMPANIES",
    "INDUSTRIES",
    "BRANDS",
    "MANUFACTURERS",
    "PRODUCTS",
    "ALBUMS",
    "GENRES",
    "ARTISTS",
    "PUBLISHERS",
    "SPECIES",
    "FAMILIES",
    "COLORS",
    "OCCUPATIONS",
    "EDUCATION_LEVELS",
    "DEGREES",
    "STATUS_WORDS",
    "RESULT_WORDS",
    "CATEGORY_WORDS",
    "CLASS_WORDS",
    "FORMAT_WORDS",
    "SERVICE_WORDS",
    "COMMAND_WORDS",
    "REQUIREMENT_WORDS",
    "COMPONENT_WORDS",
    "COLLECTION_WORDS",
    "AFFILIATIONS",
    "ORGANISATIONS",
    "OPERATORS",
    "DAYS",
    "MONTHS",
    "GENDERS",
    "SEXES",
    "GRADES",
    "REGIONS",
    "DESCRIPTION_PHRASES",
    "NOTE_PHRASES",
    "STREET_NAMES",
    "STREET_SUFFIXES",
]

FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Nancy", "Daniel", "Lisa", "Matthew", "Margaret", "Anthony", "Betty",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Dorothy", "Paul",
    "Kimberly", "Andrew", "Emily", "Joshua", "Donna", "Kenneth", "Michelle",
    "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Laura",
    "Jeffrey", "Helen", "Ryan", "Sharon", "Jacob", "Cynthia", "Gary",
    "Kathleen", "Nicholas", "Amy", "Eric", "Shirley", "Stephen", "Angela",
    "Jonathan", "Anna", "Larry", "Ruth", "Justin", "Brenda", "Scott",
    "Pamela", "Brandon", "Nicole", "Frank", "Katherine", "Benjamin",
    "Samantha", "Gregory", "Christine", "Samuel", "Catherine", "Raymond",
    "Virginia", "Patrick", "Rachel", "Alexander", "Janet", "Jack", "Maria",
    "Dennis", "Heather", "Jerry", "Diane", "Tyler", "Julie", "Aaron",
    "Joyce", "Jose", "Victoria", "Adam", "Kelly", "Nathan", "Christina",
    "Henry", "Joan", "Douglas", "Evelyn", "Zachary", "Lauren", "Peter",
    "Judith", "Kyle", "Olivia", "Walter", "Frances", "Ethan", "Martha",
    "Jeremy", "Cheryl", "Harold", "Megan", "Keith", "Andrea", "Christian",
    "Hannah", "Roger", "Jacqueline", "Noah", "Ann", "Gerald", "Jean",
    "Carl", "Alice", "Terry", "Kathryn", "Sean", "Gloria", "Austin",
    "Teresa", "Arthur", "Doris", "Lawrence", "Sara", "Jesse", "Janice",
    "Dylan", "Julia", "Bryan", "Marie", "Joe", "Madison", "Jordan", "Grace",
    "Billy", "Judy", "Bruce", "Theresa", "Albert", "Beverly", "Willie",
    "Denise", "Gabriel", "Marilyn", "Logan", "Amber", "Alan", "Danielle",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez", "Powell", "Jenkins", "Perry", "Russell",
    "Sullivan", "Bell", "Coleman", "Butler", "Henderson", "Barnes",
    "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin",
    "Wallace", "Moreno", "West", "Cole", "Hayes", "Bryant", "Herrera",
    "Gibson", "Ellis", "Tran", "Medina", "Aguilar", "Stevens", "Murray",
    "Ford", "Castro", "Marshall", "Owens", "Harrison", "Fernandez",
]

#: City -> (country, US state or province, continent, region)
CITY_INFO: dict[str, tuple[str, str, str, str]] = {
    "London": ("United Kingdom", "England", "Europe", "Western Europe"),
    "Paris": ("France", "Ile-de-France", "Europe", "Western Europe"),
    "Berlin": ("Germany", "Brandenburg", "Europe", "Central Europe"),
    "Madrid": ("Spain", "Madrid", "Europe", "Southern Europe"),
    "Rome": ("Italy", "Lazio", "Europe", "Southern Europe"),
    "Florence": ("Italy", "Tuscany", "Europe", "Southern Europe"),
    "Milan": ("Italy", "Lombardy", "Europe", "Southern Europe"),
    "Warsaw": ("Poland", "Masovia", "Europe", "Eastern Europe"),
    "Krakow": ("Poland", "Lesser Poland", "Europe", "Eastern Europe"),
    "Braunschweig": ("Germany", "Lower Saxony", "Europe", "Central Europe"),
    "Munich": ("Germany", "Bavaria", "Europe", "Central Europe"),
    "Hamburg": ("Germany", "Hamburg", "Europe", "Central Europe"),
    "Vienna": ("Austria", "Vienna", "Europe", "Central Europe"),
    "Prague": ("Czech Republic", "Prague", "Europe", "Central Europe"),
    "Budapest": ("Hungary", "Budapest", "Europe", "Central Europe"),
    "Amsterdam": ("Netherlands", "North Holland", "Europe", "Western Europe"),
    "Brussels": ("Belgium", "Brussels", "Europe", "Western Europe"),
    "Lisbon": ("Portugal", "Lisbon", "Europe", "Southern Europe"),
    "Dublin": ("Ireland", "Leinster", "Europe", "Western Europe"),
    "Stockholm": ("Sweden", "Stockholm", "Europe", "Northern Europe"),
    "Oslo": ("Norway", "Oslo", "Europe", "Northern Europe"),
    "Copenhagen": ("Denmark", "Capital Region", "Europe", "Northern Europe"),
    "Helsinki": ("Finland", "Uusimaa", "Europe", "Northern Europe"),
    "Athens": ("Greece", "Attica", "Europe", "Southern Europe"),
    "Zurich": ("Switzerland", "Zurich", "Europe", "Central Europe"),
    "Geneva": ("Switzerland", "Geneva", "Europe", "Central Europe"),
    "Barcelona": ("Spain", "Catalonia", "Europe", "Southern Europe"),
    "Seville": ("Spain", "Andalusia", "Europe", "Southern Europe"),
    "Porto": ("Portugal", "Norte", "Europe", "Southern Europe"),
    "Moscow": ("Russia", "Moscow", "Europe", "Eastern Europe"),
    "Kyiv": ("Ukraine", "Kyiv", "Europe", "Eastern Europe"),
    "New York": ("United States", "New York", "North America", "Northeast"),
    "Los Angeles": ("United States", "California", "North America", "West"),
    "Chicago": ("United States", "Illinois", "North America", "Midwest"),
    "Houston": ("United States", "Texas", "North America", "South"),
    "Phoenix": ("United States", "Arizona", "North America", "Southwest"),
    "Philadelphia": ("United States", "Pennsylvania", "North America", "Northeast"),
    "San Antonio": ("United States", "Texas", "North America", "South"),
    "San Diego": ("United States", "California", "North America", "West"),
    "Dallas": ("United States", "Texas", "North America", "South"),
    "Austin": ("United States", "Texas", "North America", "South"),
    "Seattle": ("United States", "Washington", "North America", "Northwest"),
    "Denver": ("United States", "Colorado", "North America", "Mountain"),
    "Boston": ("United States", "Massachusetts", "North America", "Northeast"),
    "Portland": ("United States", "Oregon", "North America", "Northwest"),
    "Atlanta": ("United States", "Georgia", "North America", "Southeast"),
    "Miami": ("United States", "Florida", "North America", "Southeast"),
    "Detroit": ("United States", "Michigan", "North America", "Midwest"),
    "Minneapolis": ("United States", "Minnesota", "North America", "Midwest"),
    "Toronto": ("Canada", "Ontario", "North America", "Eastern Canada"),
    "Vancouver": ("Canada", "British Columbia", "North America", "Western Canada"),
    "Montreal": ("Canada", "Quebec", "North America", "Eastern Canada"),
    "Mexico City": ("Mexico", "CDMX", "North America", "Central Mexico"),
    "Tokyo": ("Japan", "Tokyo", "Asia", "East Asia"),
    "Osaka": ("Japan", "Osaka", "Asia", "East Asia"),
    "Kyoto": ("Japan", "Kyoto", "Asia", "East Asia"),
    "Seoul": ("South Korea", "Seoul", "Asia", "East Asia"),
    "Beijing": ("China", "Beijing", "Asia", "East Asia"),
    "Shanghai": ("China", "Shanghai", "Asia", "East Asia"),
    "Hong Kong": ("China", "Hong Kong", "Asia", "East Asia"),
    "Singapore": ("Singapore", "Singapore", "Asia", "Southeast Asia"),
    "Bangkok": ("Thailand", "Bangkok", "Asia", "Southeast Asia"),
    "Jakarta": ("Indonesia", "Jakarta", "Asia", "Southeast Asia"),
    "Manila": ("Philippines", "Metro Manila", "Asia", "Southeast Asia"),
    "Mumbai": ("India", "Maharashtra", "Asia", "South Asia"),
    "Delhi": ("India", "Delhi", "Asia", "South Asia"),
    "Bangalore": ("India", "Karnataka", "Asia", "South Asia"),
    "Karachi": ("Pakistan", "Sindh", "Asia", "South Asia"),
    "Dubai": ("United Arab Emirates", "Dubai", "Asia", "Middle East"),
    "Istanbul": ("Turkey", "Istanbul", "Asia", "Middle East"),
    "Tel Aviv": ("Israel", "Tel Aviv", "Asia", "Middle East"),
    "Cairo": ("Egypt", "Cairo", "Africa", "North Africa"),
    "Lagos": ("Nigeria", "Lagos", "Africa", "West Africa"),
    "Nairobi": ("Kenya", "Nairobi", "Africa", "East Africa"),
    "Johannesburg": ("South Africa", "Gauteng", "Africa", "Southern Africa"),
    "Cape Town": ("South Africa", "Western Cape", "Africa", "Southern Africa"),
    "Casablanca": ("Morocco", "Casablanca", "Africa", "North Africa"),
    "Sydney": ("Australia", "New South Wales", "Oceania", "Australia"),
    "Melbourne": ("Australia", "Victoria", "Oceania", "Australia"),
    "Brisbane": ("Australia", "Queensland", "Oceania", "Australia"),
    "Auckland": ("New Zealand", "Auckland", "Oceania", "New Zealand"),
    "Wellington": ("New Zealand", "Wellington", "Oceania", "New Zealand"),
    "Sao Paulo": ("Brazil", "Sao Paulo", "South America", "Southeast Brazil"),
    "Rio de Janeiro": ("Brazil", "Rio de Janeiro", "South America", "Southeast Brazil"),
    "Buenos Aires": ("Argentina", "Buenos Aires", "South America", "Pampas"),
    "Santiago": ("Chile", "Santiago", "South America", "Central Chile"),
    "Lima": ("Peru", "Lima", "South America", "Coast"),
    "Bogota": ("Colombia", "Bogota", "South America", "Andes"),
    "Caracas": ("Venezuela", "Capital District", "South America", "Caribbean Coast"),
    "Quito": ("Ecuador", "Pichincha", "South America", "Andes"),
    "Edinburgh": ("United Kingdom", "Scotland", "Europe", "Northern Europe"),
    "Manchester": ("United Kingdom", "England", "Europe", "Western Europe"),
    "Liverpool": ("United Kingdom", "England", "Europe", "Western Europe"),
    "Birmingham": ("United Kingdom", "England", "Europe", "Western Europe"),
    "Glasgow": ("United Kingdom", "Scotland", "Europe", "Northern Europe"),
    "Lyon": ("France", "Auvergne-Rhone-Alpes", "Europe", "Western Europe"),
    "Marseille": ("France", "Provence", "Europe", "Western Europe"),
    "Naples": ("Italy", "Campania", "Europe", "Southern Europe"),
    "Turin": ("Italy", "Piedmont", "Europe", "Southern Europe"),
    "Valencia": ("Spain", "Valencia", "Europe", "Southern Europe"),
}

CITIES = list(CITY_INFO.keys())
COUNTRIES = sorted({info[0] for info in CITY_INFO.values()})
CONTINENTS = ["Europe", "Asia", "Africa", "North America", "South America", "Oceania"]

US_STATES = [
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
    "Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
    "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
    "Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
    "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York",
    "North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
    "Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
    "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
    "West Virginia", "Wisconsin", "Wyoming",
]

COUNTIES = [
    "Orange County", "Kings County", "Cook County", "Harris County",
    "Maricopa County", "San Diego County", "Dallas County", "Riverside County",
    "Clark County", "Wayne County", "Broward County", "Bexar County",
    "Santa Clara County", "Alameda County", "Middlesex County",
    "Suffolk County", "Fairfax County", "Franklin County", "Hennepin County",
    "Travis County", "Cuyahoga County", "Allegheny County", "Oakland County",
    "Montgomery County", "Fulton County", "Pima County", "Essex County",
    "Westchester County", "Milwaukee County", "Fresno County", "Shelby County",
    "Hartford County", "Marion County", "Kent County", "Lancashire",
    "Yorkshire", "Surrey", "Kent", "Hampshire", "Devon", "Somerset",
    "Norfolk", "Cornwall", "Cheshire", "Cumbria",
]

NATIONALITIES = [
    "American", "British", "German", "French", "Italian", "Spanish",
    "Polish", "Dutch", "Belgian", "Swiss", "Austrian", "Swedish",
    "Norwegian", "Danish", "Finnish", "Irish", "Portuguese", "Greek",
    "Russian", "Ukrainian", "Turkish", "Japanese", "Korean", "Chinese",
    "Indian", "Pakistani", "Brazilian", "Argentine", "Chilean", "Mexican",
    "Canadian", "Australian", "Egyptian", "Nigerian", "Kenyan",
    "South African", "Moroccan", "Israeli", "Thai", "Indonesian",
    "Filipino", "Vietnamese", "Czech", "Hungarian", "Romanian",
]

LANGUAGES = [
    "English", "French", "German", "Spanish", "Italian", "Portuguese",
    "Dutch", "Polish", "Russian", "Ukrainian", "Czech", "Slovak",
    "Hungarian", "Romanian", "Greek", "Turkish", "Arabic", "Hebrew",
    "Hindi", "Urdu", "Bengali", "Tamil", "Mandarin", "Cantonese",
    "Japanese", "Korean", "Thai", "Vietnamese", "Indonesian", "Malay",
    "Swahili", "Swedish", "Norwegian", "Danish", "Finnish", "Icelandic",
]

RELIGIONS = [
    "Christianity", "Islam", "Hinduism", "Buddhism", "Judaism", "Sikhism",
    "Catholic", "Protestant", "Orthodox", "Baptist", "Methodist", "Lutheran",
    "Anglican", "Presbyterian", "Shinto", "Taoism", "Jainism", "Atheist",
    "Agnostic", "None",
]

CURRENCIES = [
    "USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "NZD", "SEK", "NOK",
    "DKK", "PLN", "CZK", "HUF", "RUB", "TRY", "CNY", "HKD", "SGD", "INR",
    "BRL", "ARS", "CLP", "MXN", "ZAR", "KRW", "THB", "IDR", "PHP", "MYR",
]

TEAMS = [
    "Eagles", "Tigers", "Lions", "Bears", "Wolves", "Sharks", "Hawks",
    "Falcons", "Panthers", "Bulls", "Rangers", "Rovers", "United",
    "City", "Athletic", "Wanderers", "Dynamo", "Spartans", "Titans",
    "Warriors", "Knights", "Pirates", "Vikings", "Raiders", "Chargers",
    "Thunder", "Lightning", "Storm", "Hurricanes", "Avalanche", "Comets",
    "Rockets", "Stars", "Galaxy", "Metros", "Royals", "Senators",
    "Kings", "Dukes", "Saints",
]

CLUBS = [
    "FC Barcelona", "Real Madrid", "Manchester United", "Liverpool FC",
    "Chelsea FC", "Arsenal FC", "Bayern Munich", "Borussia Dortmund",
    "Juventus", "AC Milan", "Inter Milan", "Paris Saint-Germain",
    "Ajax Amsterdam", "FC Porto", "Benfica", "Celtic FC", "Rangers FC",
    "Atletico Madrid", "Sevilla FC", "Valencia CF", "AS Roma", "Lazio",
    "Napoli", "Tottenham Hotspur", "Manchester City", "Everton FC",
    "Leeds United", "West Ham United", "Newcastle United", "Aston Villa",
    "RB Leipzig", "Schalke 04", "Olympique Lyonnais", "AS Monaco",
    "Sporting CP", "Feyenoord", "PSV Eindhoven", "Galatasaray",
    "Fenerbahce", "Besiktas",
]

SPORT_POSITIONS = [
    "Goalkeeper", "Defender", "Midfielder", "Forward", "Striker", "Winger",
    "Centre Back", "Full Back", "Pitcher", "Catcher", "Shortstop",
    "First Base", "Second Base", "Third Base", "Outfield", "Point Guard",
    "Shooting Guard", "Small Forward", "Power Forward", "Center",
    "Quarterback", "Running Back", "Wide Receiver", "Linebacker",
    "Tight End", "Safety", "Cornerback", "Prop", "Hooker", "Fly-half",
]

COMPANIES = [
    "Acme Corporation", "Globex Industries", "Initech", "Umbrella Corp",
    "Stark Industries", "Wayne Enterprises", "Cyberdyne Systems",
    "Wonka Industries", "Tyrell Corporation", "Soylent Corp",
    "Massive Dynamic", "Hooli", "Pied Piper", "Aperture Science",
    "Black Mesa", "Oscorp", "LexCorp", "Weyland-Yutani", "Nakatomi Trading",
    "Gringotts Bank", "Sterling Cooper", "Dunder Mifflin", "Prestige Worldwide",
    "Vandelay Industries", "Bluth Company", "Gekko and Co", "Duff Brewing",
    "Oceanic Airlines", "Virtucon", "Zorin Industries", "Northwind Traders",
    "Contoso Ltd", "Fabrikam Inc", "Adventure Works", "Tailspin Toys",
    "Wide World Importers", "Proseware Inc", "Litware Inc", "Lucerne Publishing",
    "Graphic Design Institute",
]

INDUSTRIES = [
    "Technology", "Finance", "Healthcare", "Retail", "Manufacturing",
    "Energy", "Telecommunications", "Automotive", "Aerospace",
    "Pharmaceuticals", "Agriculture", "Construction", "Education",
    "Entertainment", "Hospitality", "Insurance", "Logistics", "Media",
    "Mining", "Real Estate", "Transportation", "Utilities", "Banking",
    "Biotechnology", "Consulting", "Defense", "Electronics", "Fashion",
    "Food and Beverage", "Gaming",
]

BRANDS = [
    "Alpina", "Nordica", "Vertex", "Solara", "Kestrel", "Meridian",
    "Zephyr", "Aurora", "Cascade", "Pinnacle", "Summit", "Horizon",
    "Odyssey", "Voyager", "Pioneer", "Frontier", "Quantum", "Nimbus",
    "Stellar", "Eclipse", "Mirage", "Phoenix", "Titanix", "Evergreen",
    "Redwood", "Bluebird", "Silverline", "Goldcrest", "Ironclad", "Swift",
]

MANUFACTURERS = [
    "Precision Tools GmbH", "Apex Manufacturing", "Omega Works",
    "Delta Fabrication", "Sigma Industrial", "Vulcan Foundry",
    "Atlas Machining", "Orion Assemblies", "Helios Components",
    "Titan Engineering", "Nova Plastics", "Crest Metals",
    "Summit Electronics", "Pinnacle Motors", "Meridian Textiles",
    "Cascade Ceramics", "Zenith Optics", "Polaris Instruments",
    "Aurora Chemicals", "Evergreen Packaging",
]

PRODUCTS = [
    "Wireless Mouse", "Mechanical Keyboard", "USB-C Cable", "Laptop Stand",
    "Noise Cancelling Headphones", "Portable Charger", "Smart Watch",
    "Fitness Tracker", "Bluetooth Speaker", "Webcam", "Desk Lamp",
    "Office Chair", "Standing Desk", "Monitor Arm", "External SSD",
    "Memory Card", "Router", "Network Switch", "Graphics Tablet",
    "Espresso Machine", "Electric Kettle", "Air Purifier", "Vacuum Cleaner",
    "Blender", "Toaster Oven", "Rice Cooker", "Water Bottle", "Backpack",
    "Travel Mug", "Notebook",
]

ALBUMS = [
    "Midnight Echoes", "Golden Hour", "Paper Skies", "Electric Dreams",
    "Silent Rivers", "Neon Gardens", "Broken Compass", "Velvet Morning",
    "Crimson Tide", "Glass Houses", "Wildfire Season", "Northern Lights",
    "Gravity Falls", "Ocean Avenue", "Starlight Motel", "Winter Stories",
    "Summer Nights", "Autumn Leaves", "Spring Awakening", "Desert Bloom",
    "City of Mirrors", "Long Way Home", "Endless Highway", "Quiet Storm",
    "Fading Photographs", "Hollow Moon", "Scarlet Letters", "Emerald City",
    "Shadow Dancing", "Infinite Loop",
]

GENRES = [
    "Rock", "Pop", "Jazz", "Blues", "Classical", "Country", "Folk",
    "Hip Hop", "R&B", "Electronic", "House", "Techno", "Ambient", "Metal",
    "Punk", "Reggae", "Soul", "Funk", "Gospel", "Latin", "Opera",
    "Indie", "Alternative", "Drama", "Comedy", "Thriller", "Horror",
    "Documentary", "Romance", "Science Fiction", "Fantasy", "Mystery",
    "Biography", "History", "Adventure", "Animation",
]

ARTISTS = [
    "The Velvet Sparrows", "Luna Hartley", "Ezra Blackwood", "Crimson Valley",
    "Nora Vance", "The Midnight Owls", "Silas Grey", "Ivy Montgomery",
    "Echo Chamber", "The Paper Lanterns", "Jasper Cole", "Aria Winters",
    "Stone Harbor", "Ruby Callahan", "The Wandering Pines", "Felix Marlowe",
    "Willow Reyes", "Atlas Turner", "The Glass Animals Tribute",
    "Margot Delacroix", "Orion Wells", "Scarlet Finch", "Hollow Kings",
    "June Abernathy", "The Copper Foxes", "Dorian Ashe", "Violet Mercer",
    "The Salt Flats", "Rhys Callahan", "Beatrix Stone",
]

PUBLISHERS = [
    "Penguin Random House", "HarperCollins", "Simon and Schuster",
    "Hachette Book Group", "Macmillan Publishers", "Scholastic",
    "Oxford University Press", "Cambridge University Press",
    "Wiley", "Springer", "Elsevier", "Pearson", "McGraw-Hill",
    "Bloomsbury", "Faber and Faber", "Vintage Books", "Anchor Books",
    "Riverhead Books", "Grove Press", "Tor Books", "Orbit Books",
    "Del Rey", "Bantam Books", "Doubleday", "Knopf", "Crown Publishing",
    "Little Brown", "Houghton Mifflin", "Norton", "Beacon Press",
]

SPECIES = [
    "Panthera leo", "Panthera tigris", "Canis lupus", "Felis catus",
    "Ursus arctos", "Elephas maximus", "Loxodonta africana",
    "Equus caballus", "Bos taurus", "Ovis aries", "Sus scrofa",
    "Gallus gallus", "Anas platyrhynchos", "Falco peregrinus",
    "Aquila chrysaetos", "Corvus corax", "Passer domesticus",
    "Salmo salar", "Thunnus thynnus", "Carcharodon carcharias",
    "Delphinus delphis", "Balaenoptera musculus", "Apis mellifera",
    "Danaus plexippus", "Quercus robur", "Pinus sylvestris",
    "Sequoia sempervirens", "Rosa canina", "Tulipa gesneriana",
    "Helianthus annuus",
]

FAMILIES = [
    "Felidae", "Canidae", "Ursidae", "Elephantidae", "Equidae", "Bovidae",
    "Suidae", "Phasianidae", "Anatidae", "Falconidae", "Accipitridae",
    "Corvidae", "Passeridae", "Salmonidae", "Scombridae", "Lamnidae",
    "Delphinidae", "Balaenopteridae", "Apidae", "Nymphalidae", "Fagaceae",
    "Pinaceae", "Cupressaceae", "Rosaceae", "Liliaceae", "Asteraceae",
    "Smith family", "Johnson family", "Garcia family", "Nguyen family",
]

COLORS = [
    "Red", "Blue", "Green", "Yellow", "Black", "White", "Silver", "Gold",
    "Orange", "Purple", "Brown", "Grey", "Navy", "Teal", "Maroon", "Olive",
]

OCCUPATIONS = [
    "Engineer", "Teacher", "Physician", "Nurse", "Lawyer", "Accountant",
    "Architect", "Scientist", "Writer", "Journalist", "Photographer",
    "Chef", "Pilot", "Electrician", "Plumber", "Carpenter", "Farmer",
    "Professor", "Economist", "Designer", "Composer", "Painter",
    "Sculptor", "Actor", "Director", "Producer", "Musician", "Singer",
    "Dancer", "Athlete", "Coach", "Politician", "Diplomat", "Historian",
    "Philosopher", "Mathematician", "Physicist", "Chemist", "Biologist",
    "Astronomer",
]

EDUCATION_LEVELS = [
    "High School Diploma", "Associate Degree", "Bachelor of Arts",
    "Bachelor of Science", "Master of Arts", "Master of Science",
    "Master of Business Administration", "Doctor of Philosophy",
    "Doctor of Medicine", "Juris Doctor", "Bachelor of Engineering",
    "Master of Engineering", "Postdoctoral", "Vocational Training",
    "Some College", "Graduate Certificate",
]

DEGREES = EDUCATION_LEVELS

STATUS_WORDS = [
    "Active", "Inactive", "Pending", "Completed", "Cancelled", "Open",
    "Closed", "Approved", "Rejected", "In Progress", "On Hold", "Draft",
    "Published", "Archived", "Suspended", "Retired", "Expired", "New",
    "Confirmed", "Shipped", "Delivered", "Returned", "Failed", "Passed",
]

RESULT_WORDS = [
    "Win", "Loss", "Draw", "W", "L", "D", "Pass", "Fail", "1-0", "2-1",
    "3-2", "0-0", "1-1", "2-2", "4-0", "3-1", "2-0", "5-2", "Qualified",
    "Eliminated", "Advanced", "Disqualified", "Retired", "DNF", "DNS",
    "Finished", "Gold", "Silver", "Bronze", "4th",
]

CATEGORY_WORDS = [
    "Electronics", "Clothing", "Books", "Toys", "Sports", "Garden",
    "Automotive", "Beauty", "Health", "Grocery", "Furniture", "Jewelry",
    "Music", "Movies", "Games", "Office", "Pet Supplies", "Baby",
    "Outdoor", "Tools", "Appliances", "Crafts", "Travel", "Fiction",
    "Non-fiction", "Reference", "Senior", "Junior", "Amateur", "Professional",
    "Open", "Women", "Men", "Youth", "Mixed",
]

CLASS_WORDS = [
    "A", "B", "C", "D", "E", "First Class", "Second Class", "Third Class",
    "Economy", "Business", "Premium", "Standard", "Deluxe", "Compact",
    "Mid-size", "Full-size", "Class I", "Class II", "Class III",
    "Heavyweight", "Lightweight", "Middleweight", "Featherweight",
    "Freshman", "Sophomore", "Junior", "Senior",
]

FORMAT_WORDS = [
    "PDF", "CSV", "XML", "JSON", "HTML", "TXT", "DOC", "DOCX", "XLS",
    "XLSX", "PPT", "MP3", "MP4", "WAV", "FLAC", "AVI", "MKV", "JPEG",
    "PNG", "GIF", "TIFF", "SVG", "ZIP", "TAR", "Hardcover", "Paperback",
    "E-book", "Audiobook", "Vinyl", "CD", "DVD", "Blu-ray", "Digital",
    "Streaming",
]

SERVICE_WORDS = [
    "Delivery", "Installation", "Maintenance", "Repair", "Consulting",
    "Training", "Support", "Cleaning", "Catering", "Security",
    "Landscaping", "Accounting", "Legal Advice", "Translation", "Design",
    "Hosting", "Backup", "Monitoring", "Streaming", "Subscription",
    "Express Shipping", "Standard Shipping", "Gift Wrapping",
    "Extended Warranty", "Technical Support", "Customer Service",
    "Bus Service", "Rail Service", "Ferry Service", "Shuttle Service",
]

COMMAND_WORDS = [
    "ls", "cd", "mkdir", "rm", "cp", "mv", "cat", "grep", "find", "chmod",
    "chown", "tar", "zip", "ssh", "scp", "ping", "curl", "wget", "top",
    "ps", "kill", "sudo", "apt-get install", "pip install", "git clone",
    "git commit", "git push", "docker run", "make build", "npm install",
    "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE TABLE",
]

REQUIREMENT_WORDS = [
    "Valid ID required", "Minimum age 18", "Prior experience required",
    "Bachelor degree required", "Background check", "Security clearance",
    "Driver license", "Work permit", "Health certificate", "Insurance proof",
    "Deposit required", "Reservation required", "Membership required",
    "Prerequisite course", "Minimum GPA 3.0", "Two references",
    "Portfolio submission", "Resume and cover letter", "Medical exam",
    "Fitness test", "Language proficiency", "Typing 60 wpm",
    "5 years experience", "Certification required", "Passport required",
]

COMPONENT_WORDS = [
    "CPU", "GPU", "Motherboard", "RAM Module", "Power Supply", "Heat Sink",
    "Cooling Fan", "SSD Drive", "Hard Drive", "Network Card",
    "Sound Card", "Capacitor", "Resistor", "Transistor", "Diode",
    "Inductor", "Relay", "Fuse", "Sensor", "Actuator", "Gearbox",
    "Crankshaft", "Piston", "Radiator", "Alternator", "Battery Pack",
    "Brake Pad", "Spark Plug", "Fuel Pump", "Timing Belt",
]

COLLECTION_WORDS = [
    "Spring Collection", "Summer Collection", "Autumn Collection",
    "Winter Collection", "Heritage Collection", "Limited Edition",
    "Signature Series", "Classic Collection", "Modern Art Collection",
    "Ancient Artifacts", "Rare Books", "Coin Collection",
    "Stamp Collection", "Photography Archive", "Manuscript Collection",
    "Impressionist Works", "Renaissance Gallery", "Asian Art",
    "Contemporary Wing", "Natural History Specimens", "Mineral Collection",
    "Fossil Collection", "Textile Archive", "Ceramics Collection",
    "Sculpture Garden",
]

AFFILIATIONS = [
    "Independent", "Democratic Party", "Republican Party", "Labour Party",
    "Conservative Party", "Green Party", "Liberal Democrats",
    "Social Democrats", "National University", "State College",
    "Technical Institute", "Research Hospital", "Medical Center",
    "Community Church", "Trade Union", "Chamber of Commerce",
    "Rotary Club", "Lions Club", "Alumni Association", "Bar Association",
    "Medical Association", "Engineering Society", "Historical Society",
    "Arts Council", "Athletic Conference",
]

ORGANISATIONS = [
    "United Nations", "World Health Organization", "Red Cross",
    "Doctors Without Borders", "Amnesty International", "Greenpeace",
    "World Wildlife Fund", "UNICEF", "UNESCO", "World Bank",
    "International Monetary Fund", "European Union", "African Union",
    "NATO", "OPEC", "ASEAN", "Interpol", "Salvation Army", "Oxfam",
    "Habitat for Humanity", "Rotary International", "Scouts Association",
    "National Geographic Society", "Smithsonian Institution",
    "British Council",
]

OPERATORS = [
    "National Rail", "Metro Transit", "City Bus Lines", "Express Coaches",
    "Skyline Airways", "Pacific Airlines", "Atlantic Air", "Northern Rail",
    "Southern Railways", "Central Metro", "Harbor Ferries", "Star Cruises",
    "Swift Logistics", "Prime Couriers", "Vodacom", "Telenor", "Orange",
    "Vodafone", "T-Mobile", "Verizon", "AT&T", "Sprint", "BT Group",
    "Deutsche Telekom", "Telefonica",
]

DAYS = [
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun",
]

MONTHS = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]

GENDERS = ["Male", "Female", "M", "F", "Non-binary", "Other"]
SEXES = ["Male", "Female", "M", "F"]

GRADES = [
    "A+", "A", "A-", "B+", "B", "B-", "C+", "C", "C-", "D+", "D", "F",
    "Pass", "Fail", "Distinction", "Merit", "Credit", "Grade 1", "Grade 2",
    "Grade 3", "Grade 4", "Grade 5", "K", "1st", "2nd", "3rd", "4th",
    "5th", "6th", "7th", "8th",
]

REGIONS = [
    "North", "South", "East", "West", "Northeast", "Northwest", "Southeast",
    "Southwest", "Central", "Midwest", "Pacific Northwest", "New England",
    "Scandinavia", "Balkans", "Benelux", "Iberia", "Caucasus",
    "Central Asia", "Southeast Asia", "East Asia", "South Asia",
    "Middle East", "North Africa", "Sub-Saharan Africa", "Latin America",
    "Caribbean", "Oceania", "Western Europe", "Eastern Europe", "Nordic",
]

DESCRIPTION_PHRASES = [
    "High quality product with excellent durability",
    "Annual meeting of the board of directors",
    "Limited edition release for collectors",
    "Standard shipping included in the price",
    "Award winning performance by the lead actor",
    "Comprehensive coverage of the subject matter",
    "Monthly subscription with unlimited access",
    "Handcrafted from sustainable materials",
    "Introductory course for beginners",
    "Advanced features for professional users",
    "Compact design suitable for travel",
    "Energy efficient and environmentally friendly",
    "Classic style with modern improvements",
    "Includes a two year manufacturer warranty",
    "Best seller in its category for three years",
    "Newly renovated with updated facilities",
    "Family friendly venue with free parking",
    "Scenic route along the coastline",
    "Historic landmark built in the nineteenth century",
    "Popular destination for summer tourists",
    "Quarterly financial report summary",
    "Detailed analysis of market trends",
    "Emergency contact information on file",
    "Temporary closure for scheduled maintenance",
    "Special discount for returning customers",
]

NOTE_PHRASES = [
    "See attached document", "Requires further review", "Approved by manager",
    "Pending confirmation", "Follow up next week", "No longer available",
    "Updated last month", "Check inventory before shipping",
    "Customer requested refund", "Duplicate entry removed",
    "Verified by phone", "Left voicemail", "Meeting rescheduled",
    "Contract signed", "Payment received", "Awaiting response",
    "Out of office until Monday", "Priority handling", "Fragile item",
    "Gift wrapping requested", "Backordered", "Discontinued model",
    "Replacement issued", "Warranty void", "Final sale",
]

STREET_NAMES = [
    "Main", "Oak", "Maple", "Cedar", "Elm", "Pine", "Washington", "Lake",
    "Hill", "Park", "River", "Church", "High", "Mill", "Walnut", "Spring",
    "North", "South", "Center", "Union", "Bridge", "Market", "Franklin",
    "Jefferson", "Lincoln", "Madison", "Jackson", "Station", "College",
    "Victoria",
]

STREET_SUFFIXES = [
    "Street", "Avenue", "Boulevard", "Road", "Lane", "Drive", "Court",
    "Place", "Terrace", "Way",
]
