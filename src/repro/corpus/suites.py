"""Hard-case evaluation suites: discovery, presets, manifests.

A *suite* is a shipped corpus spec file under ``specs/`` that
mass-produces one family of adversarial tables the paper's WebTables-style
evaluation never covered: unicode-heavy values, dirty and mixed-type
columns, near-ambiguous type pairs, wide tables, skewed row counts,
SCD-style temporal re-versions.  Each spec carries a ``difficulty``
manifest (expected hardness, the axes it stresses, and a suggested
promotion-gate floor) so gate configurations are reviewable alongside the
data they gate on.

Suites are wired into two consumers:

* ``repro-sato evaluate --suite <name>`` — per-suite macro-F1 for a model
  bundle (:mod:`repro.evaluation.suites`),
* ``repro-sato registry promote --gate --suite <name>[:floor]`` — per-suite
  minimum-F1 / no-regression-vs-incumbent promotion criteria
  (:mod:`repro.registry.gates`).

Resolution order for the specs directory: the ``REPRO_SPECS_DIR``
environment variable, else ``<repo root>/specs`` relative to this package
(the src layout the repo and CI use).
"""

from __future__ import annotations

import math
import os
from dataclasses import replace
from pathlib import Path

from repro.corpus.spec import CorpusBundle, CorpusSpec, build_corpus, load_spec

__all__ = [
    "SPECS_DIR_ENV",
    "SUITE_PRESETS",
    "available_suites",
    "build_suite",
    "load_suite_spec",
    "scale_spec",
    "specs_dir",
    "suite_manifest",
]

#: Environment override for the specs directory.
SPECS_DIR_ENV = "REPRO_SPECS_DIR"

#: Named size presets: ``count_scale`` multiplies every table spec's count
#: (rounded up, never below 1), ``max_rows_cap`` bounds sampled row counts.
#: ``tiny`` is what CI and the promotion gates use; ``full`` is the spec
#: as written.
SUITE_PRESETS: dict[str, dict] = {
    "full": {"count_scale": 1.0, "max_rows_cap": None},
    "tiny": {"count_scale": 0.34, "max_rows_cap": 10},
}


def specs_dir() -> Path:
    """The directory holding the shipped suite spec files."""
    override = os.environ.get(SPECS_DIR_ENV)
    if override:
        return Path(override)
    # src/repro/corpus/suites.py -> repo root is three parents above src/.
    return Path(__file__).resolve().parents[3] / "specs"


def available_suites() -> dict[str, Path]:
    """Mapping of suite name -> spec file path, sorted by name."""
    directory = specs_dir()
    if not directory.is_dir():
        return {}
    suites = {}
    for path in sorted(directory.iterdir()):
        if path.suffix in (".json", ".yaml", ".yml") and path.is_file():
            suites[path.stem] = path
    return suites


def load_suite_spec(name: str) -> CorpusSpec:
    """Load one shipped suite spec by name (raises on unknown names)."""
    suites = available_suites()
    if name not in suites:
        known = ", ".join(sorted(suites)) or "none found"
        raise KeyError(
            f"unknown suite {name!r} (available under {specs_dir()}: {known})"
        )
    return load_spec(suites[name])


def scale_spec(spec: CorpusSpec, preset: str) -> CorpusSpec:
    """Apply a size preset to a spec (a pure, deterministic rewrite).

    The scaled spec keeps the same seed and structure, so a preset is part
    of the determinism contract: ``(spec, preset)`` fully determines the
    corpus.
    """
    if preset not in SUITE_PRESETS:
        raise KeyError(
            f"unknown preset {preset!r} (available: {', '.join(sorted(SUITE_PRESETS))})"
        )
    policy = SUITE_PRESETS[preset]
    scale = float(policy["count_scale"])
    cap = policy["max_rows_cap"]
    if scale == 1.0 and cap is None:
        return spec
    tables = []
    for table_spec in spec.tables:
        rows = table_spec.rows
        if cap is not None:
            if rows.choices is not None:
                capped = tuple(min(c, cap) for c in rows.choices)
                rows = replace(rows, choices=capped)
            else:
                rows = replace(
                    rows,
                    min_rows=min(rows.min_rows, cap),
                    max_rows=min(rows.max_rows, cap),
                )
        tables.append(
            replace(
                table_spec,
                count=max(1, math.ceil(table_spec.count * scale)),
                rows=rows,
            )
        )
    return replace(spec, tables=tuple(tables))


def build_suite(name: str, preset: str = "full") -> CorpusBundle:
    """Build a suite corpus deterministically at the given preset size."""
    return build_corpus(scale_spec(load_suite_spec(name), preset))


def suite_manifest(name: str) -> dict:
    """The suite's difficulty manifest plus basic identity fields."""
    spec = load_suite_spec(name)
    return {
        "name": spec.name,
        "description": spec.description,
        "difficulty": dict(spec.difficulty),
        "n_table_specs": len(spec.tables),
        "seed": spec.seed,
    }
