"""Declarative corpus specification: JSON/YAML in, deterministic corpus out.

The seed-era :class:`~repro.corpus.generator.CorpusGenerator` bakes its
table intents into Python code.  This module replaces that configuration
surface with a *data* format so that evaluation corpora — in particular the
adversarial suites under ``specs/`` — are reviewable artifacts rather than
code changes.

Design (after the ``DATA_SEMANTICS.md`` exemplar):

* **Dtypes are generic storage domains** (``int``, ``decimal``, ``text``,
  ``date``, ``bool``).  A dtype says how a value is shaped, never what it
  *means*.
* **All meaning comes from generators + params + constraints.**  A column
  names a generator from :data:`SPEC_GENERATORS` with a params dict; the
  generator's declared dtype must match the column's dtype.  Optional
  ``transforms`` post-process values (script swaps, dirt injection).
* **Fully deterministic per seed.**  Every table draws from a
  :class:`~repro.corpus.rng.SpecRNG` substream derived from
  ``(spec.seed, table_spec.name, table_index)``, so two builds of the same
  spec are bit-identical and editing one table spec never shifts another's
  values.  Split assignment is part of the contract: the train/test
  assignment is derived from ``spec.split.seed`` and table identity.

The format round-trips: ``parse_spec(spec.to_dict())`` reproduces an
equivalent spec, which the property tests in ``tests/test_corpus_spec.py``
assert for every shipped spec file.

Examples:
    >>> spec = parse_spec({
    ...     "name": "demo", "seed": 7,
    ...     "tables": [{
    ...         "name": "people", "count": 2, "rows": {"min": 3, "max": 5},
    ...         "columns": [
    ...             {"name": "name", "dtype": "text", "label": "name",
    ...              "generator": "semantic", "params": {"type": "name"}},
    ...             {"name": "age", "dtype": "int", "label": "age",
    ...              "generator": "int_range",
    ...              "params": {"low": 16, "high": 95}},
    ...         ]}]})
    >>> bundle = build_corpus(spec)
    >>> [t.labels for t in bundle.tables]
    [['name', 'age'], ['name', 'age']]
    >>> bundle.tables[0].columns[0].values == build_corpus(spec).tables[0].columns[0].values
    True
"""

from __future__ import annotations

import json
import unicodedata
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.corpus.config import NoiseConfig
from repro.corpus.generator import _PERSON_TYPES, _PLACE_TYPES
from repro.corpus.generators import (
    RowContext,
    generate_value,
    make_person,
    make_place,
)
from repro.corpus.noise import apply_cell_noise
from repro.corpus.rng import SpecRNG
from repro.tables import Column, Table
from repro.types import is_semantic_type

__all__ = [
    "DTYPES",
    "SPEC_GENERATORS",
    "SPEC_TRANSFORMS",
    "ColumnSpec",
    "CorpusBundle",
    "CorpusSpec",
    "RowsSpec",
    "ScdSpec",
    "SpecError",
    "SplitSpec",
    "TableSpec",
    "build_corpus",
    "load_spec",
    "parse_spec",
    "register_generator",
    "register_transform",
]

#: Foundational storage domains.  Values are always *stored* as strings
#: (the :class:`~repro.tables.Table` contract), so a dtype constrains the
#: surface form a generator may emit, not the in-memory type.
DTYPES = ("int", "decimal", "text", "date", "bool")


class SpecError(ValueError):
    """Raised when a corpus spec is malformed or internally inconsistent."""


# --------------------------------------------------------------------------
# Generator registry: name -> (dtype, callable(rng, params, ctx) -> str)
# --------------------------------------------------------------------------

#: Registered value generators.  Maps name -> (dtype, fn).
SPEC_GENERATORS: dict[str, tuple[str, Callable]] = {}

#: Registered transforms.  Maps name -> fn(value, rng, params) -> str.
SPEC_TRANSFORMS: dict[str, Callable] = {}


def register_generator(name: str, dtype: str):
    """Register a named value generator producing cells of ``dtype``."""
    if dtype not in DTYPES:
        raise SpecError(f"unknown dtype {dtype!r} for generator {name!r}")

    def decorator(fn: Callable) -> Callable:
        SPEC_GENERATORS[name] = (dtype, fn)
        return fn

    return decorator


def register_transform(name: str):
    """Register a named value transform (applied after generation)."""

    def decorator(fn: Callable) -> Callable:
        SPEC_TRANSFORMS[name] = fn
        return fn

    return decorator


@register_generator("semantic", "text")
def _spec_semantic(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    """A value from the built-in per-semantic-type cell generators.

    This is the bridge to the seed-era cell layer: the whole
    :data:`~repro.corpus.generators.VALUE_GENERATORS` registry (including
    person/place row coordination) is reachable as ``{"type": <name>}``.
    """
    return generate_value(params["type"], rng.np, ctx)


@register_generator("choice", "text")
def _spec_choice(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    values = params["values"]
    weights = params.get("weights")
    if weights is None:
        return str(rng.pick(values))
    total = float(sum(weights))
    mark = rng.random() * total
    acc = 0.0
    for value, weight in zip(values, weights):
        acc += float(weight)
        if mark < acc:
            return str(value)
    return str(values[-1])


@register_generator("int_range", "int")
def _spec_int_range(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    value = rng.integers(int(params.get("low", 0)), int(params.get("high", 100)) + 1)
    style = params.get("style", "plain")
    if style == "comma":
        return f"{value:,}"
    if style == "padded":
        return f"{value:0{int(params.get('width', 5))}d}"
    return str(value)


@register_generator("decimal_range", "decimal")
def _spec_decimal_range(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    value = rng.uniform(float(params.get("low", 0.0)), float(params.get("high", 1.0)))
    scale = int(params.get("scale", 2))
    unit = params.get("unit", "")
    text = f"{value:.{scale}f}"
    return f"{text} {unit}".strip()


@register_generator("pattern", "text")
def _spec_pattern(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    """Expand a pattern: ``A``=A-Z, ``a``=a-z, ``#``=0-9, else literal."""
    out = []
    for char in params["pattern"]:
        if char == "A":
            out.append(chr(ord("A") + rng.integers(0, 26)))
        elif char == "a":
            out.append(chr(ord("a") + rng.integers(0, 26)))
        elif char == "#":
            out.append(chr(ord("0") + rng.integers(0, 10)))
        else:
            out.append(char)
    return "".join(out)


@register_generator("digits", "int")
def _spec_digits(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    """Fixed-width digit strings (zip-code-shaped, id-shaped, ...)."""
    width = int(params.get("width", 5))
    return "".join(chr(ord("0") + rng.integers(0, 10)) for _ in range(width))


@register_generator("date", "date")
def _spec_date(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    year = rng.integers(int(params.get("min_year", 1950)), int(params.get("max_year", 2021)) + 1)
    month = rng.integers(1, 13)
    day = rng.integers(1, 29)
    style = params.get("style", "iso")
    if style == "us":
        return f"{month}/{day}/{year}"
    if style == "year":
        return str(year)
    return f"{year}-{month:02d}-{day:02d}"


@register_generator("flag", "bool")
def _spec_flag(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    truthy = rng.random() < float(params.get("probability_true", 0.5))
    true_token, false_token = params.get("tokens", ["true", "false"])
    return str(true_token) if truthy else str(false_token)


@register_generator("unicode_text", "text")
def _spec_unicode_text(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    """Multilingual token soup drawn from named script pools."""
    scripts = params.get("scripts", sorted(SCRIPT_POOLS))
    n_words = rng.integers(int(params.get("min_words", 1)), int(params.get("max_words", 3)) + 1)
    words = []
    for _ in range(n_words):
        pool = SCRIPT_POOLS[rng.pick(scripts)]
        words.append(rng.pick(pool))
    return " ".join(words)


@register_generator("mixed", "text")
def _spec_mixed(rng: SpecRNG, params: dict, ctx: RowContext) -> str:
    """Per-cell weighted mixture of other generators (mixed-type columns)."""
    parts = params["parts"]
    weights = [float(part.get("weight", 1.0)) for part in parts]
    total = sum(weights)
    mark = rng.random() * total
    acc = 0.0
    chosen = parts[-1]
    for part, weight in zip(parts, weights):
        acc += weight
        if mark < acc:
            chosen = part
            break
    dtype, fn = SPEC_GENERATORS[chosen["generator"]]
    return fn(rng, chosen.get("params", {}), ctx)


#: Vocabulary pools for ``unicode_text``, grouped by script.  Small on
#: purpose: suites stress the *featurizer's* codepoint handling (non-ASCII,
#: non-BMP, RTL, combining marks), not vocabulary breadth.
SCRIPT_POOLS: dict[str, tuple[str, ...]] = {
    "latin_accents": (
        "café", "naïve", "Zürich", "São", "Françoise", "Køpenhavn",
        "Müller", "piñata", "Ångström", "crème",
    ),
    "cyrillic": (
        "Москва", "Санкт-Петербург", "Дмитрий", "Ольга", "река",
        "Новосибирск", "Ярославль",
    ),
    "greek": ("Αθήνα", "Θεσσαλονίκη", "Δημήτρης", "αλφάβητο", "Όλυμπος"),
    "cjk": ("北京", "東京", "서울", "上海", "大阪", "京都", "広島", "平壤"),
    "arabic": ("القاهرة", "دمشق", "بغداد", "الرياض", "محمد"),
    "hebrew": ("ירושלים", "תל אביב", "חיפה", "דוד"),
    "devanagari": ("दिल्ली", "मुंबई", "वाराणसी", "गंगा"),
    "emoji": ("📊", "🌍", "🎉", "🚀", "🧪", "✨"),
}


# --------------------------------------------------------------------------
# Transforms
# --------------------------------------------------------------------------

_ACCENT_MAP = {
    "a": "á", "e": "é", "i": "í", "o": "ö", "u": "ü", "c": "ç", "n": "ñ",
    "A": "Á", "E": "É", "I": "Í", "O": "Ö", "U": "Ü", "C": "Ç", "N": "Ñ",
}


@register_transform("accent")
def _transform_accent(value: str, rng: SpecRNG, params: dict) -> str:
    """Swap ASCII letters for accented equivalents at ``rate`` per char."""
    rate = float(params.get("rate", 0.3))
    out = []
    for char in value:
        if char in _ACCENT_MAP and rng.random() < rate:
            out.append(_ACCENT_MAP[char])
        else:
            out.append(char)
    text = "".join(out)
    if params.get("decompose"):
        # NFD splits accents into combining marks: same rendered text,
        # different codepoint sequence — a classic featurizer trap.
        text = unicodedata.normalize("NFD", text)
    return text


@register_transform("dirty")
def _transform_dirty(value: str, rng: SpecRNG, params: dict) -> str:
    """Per-column dirt injection via the shared noise layer."""
    noise = NoiseConfig(
        missing_cell_rate=float(params.get("missing_cell_rate", 0.0)),
        typo_rate=float(params.get("typo_rate", 0.0)),
        case_noise_rate=float(params.get("case_noise_rate", 0.0)),
        whitespace_rate=float(params.get("whitespace_rate", 0.0)),
    )
    return apply_cell_noise(value, noise, rng.np)


@register_transform("wrap")
def _transform_wrap(value: str, rng: SpecRNG, params: dict) -> str:
    """Add a fixed prefix/suffix at ``rate`` (units, brackets, ...)."""
    if rng.random() < float(params.get("rate", 1.0)):
        return f"{params.get('prefix', '')}{value}{params.get('suffix', '')}"
    return value


# --------------------------------------------------------------------------
# Spec dataclasses
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RowsSpec:
    """Row-count policy of one table spec.

    Either a uniform ``[min, max]`` range or an explicit weighted
    ``choices`` list (used by the skewed-row-count suite).
    """

    min_rows: int = 4
    max_rows: int = 12
    choices: tuple[int, ...] | None = None
    weights: tuple[float, ...] | None = None

    def sample(self, rng: SpecRNG) -> int:
        if self.choices is not None:
            if self.weights is None:
                return int(rng.pick(self.choices))
            total = float(sum(self.weights))
            mark = rng.random() * total
            acc = 0.0
            for count, weight in zip(self.choices, self.weights):
                acc += float(weight)
                if mark < acc:
                    return int(count)
            return int(self.choices[-1])
        return rng.integers(self.min_rows, self.max_rows + 1)

    def to_dict(self) -> dict:
        if self.choices is not None:
            payload: dict = {"choices": list(self.choices)}
            if self.weights is not None:
                payload["weights"] = list(self.weights)
            return payload
        return {"min": self.min_rows, "max": self.max_rows}


@dataclass(frozen=True)
class ColumnSpec:
    """One column: storage dtype + named generator + params + transforms."""

    name: str
    generator: str
    dtype: str = "text"
    params: dict = field(default_factory=dict)
    label: str | None = None
    transforms: tuple = ()
    missing_rate: float = 0.0

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "dtype": self.dtype,
            "generator": self.generator,
        }
        if self.params:
            payload["params"] = json.loads(json.dumps(self.params))
        if self.label is not None:
            payload["label"] = self.label
        if self.transforms:
            payload["transforms"] = [
                {"name": name, **({"params": dict(params)} if params else {})}
                for name, params in self.transforms
            ]
        if self.missing_rate:
            payload["missing_rate"] = self.missing_rate
        return payload


@dataclass(frozen=True)
class ScdSpec:
    """Slowly-changing-dimension re-versioning of a table spec.

    Each generated base table is re-emitted ``versions - 1`` more times.
    ``key_columns`` stay fixed per row across versions (the business key);
    ``changing_columns`` are re-generated with probability ``change_rate``
    per row per version; every version carries a ``valid_from`` date column
    (labelled ``year``) marking its effective period, SCD2-style.
    """

    versions: int = 3
    change_rate: float = 0.3
    key_columns: tuple[str, ...] = ()
    changing_columns: tuple[str, ...] = ()
    valid_from_column: str = "validFrom"
    start_year: int = 2015

    def to_dict(self) -> dict:
        return {
            "versions": self.versions,
            "change_rate": self.change_rate,
            "key_columns": list(self.key_columns),
            "changing_columns": list(self.changing_columns),
            "valid_from_column": self.valid_from_column,
            "start_year": self.start_year,
        }


@dataclass(frozen=True)
class TableSpec:
    """A family of tables sharing one column layout."""

    name: str
    columns: tuple[ColumnSpec, ...]
    count: int = 1
    rows: RowsSpec = field(default_factory=RowsSpec)
    scd: ScdSpec | None = None

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "count": self.count,
            "rows": self.rows.to_dict(),
            "columns": [column.to_dict() for column in self.columns],
        }
        if self.scd is not None:
            payload["scd"] = self.scd.to_dict()
        return payload


@dataclass(frozen=True)
class SplitSpec:
    """Deterministic train/test assignment policy."""

    test_fraction: float = 0.5
    seed: int = 0

    def to_dict(self) -> dict:
        return {"test_fraction": self.test_fraction, "seed": self.seed}


@dataclass(frozen=True)
class CorpusSpec:
    """A complete declarative corpus: metadata + table specs + split."""

    name: str
    seed: int
    tables: tuple[TableSpec, ...]
    description: str = ""
    difficulty: dict = field(default_factory=dict)
    split: SplitSpec = field(default_factory=SplitSpec)
    version: int = 1

    def to_dict(self) -> dict:
        """Canonical JSON payload; ``parse_spec`` round-trips it."""
        payload: dict = {
            "name": self.name,
            "version": self.version,
            "seed": self.seed,
            "split": self.split.to_dict(),
            "tables": [table.to_dict() for table in self.tables],
        }
        if self.description:
            payload["description"] = self.description
        if self.difficulty:
            payload["difficulty"] = json.loads(json.dumps(self.difficulty))
        return payload


# --------------------------------------------------------------------------
# Parsing / validation
# --------------------------------------------------------------------------

_NO_DEFAULT = object()


def _require(payload: dict, key: str, where: str, default=_NO_DEFAULT):
    if key in payload:
        return payload[key]
    if default is not _NO_DEFAULT:
        return default
    raise SpecError(f"{where}: missing required key {key!r}")


def _parse_rows(payload, where: str) -> RowsSpec:
    if payload is None:
        return RowsSpec()
    if isinstance(payload, int):
        return RowsSpec(min_rows=payload, max_rows=payload)
    if not isinstance(payload, dict):
        raise SpecError(f"{where}.rows: expected int or object, got {payload!r}")
    if "choices" in payload:
        choices = tuple(int(c) for c in payload["choices"])
        if not choices or any(c <= 0 for c in choices):
            raise SpecError(f"{where}.rows.choices must be positive ints")
        weights = payload.get("weights")
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(choices) or any(w < 0 for w in weights):
                raise SpecError(
                    f"{where}.rows.weights must be non-negative and match choices"
                )
        return RowsSpec(choices=choices, weights=weights)
    min_rows = int(payload.get("min", 4))
    max_rows = int(payload.get("max", max(min_rows, 12)))
    if min_rows <= 0 or max_rows < min_rows:
        raise SpecError(f"{where}.rows: need 0 < min <= max")
    return RowsSpec(min_rows=min_rows, max_rows=max_rows)


def _parse_column(payload: dict, where: str) -> ColumnSpec:
    name = _require(payload, "name", where)
    where = f"{where}.{name}"
    generator = _require(payload, "generator", where)
    if generator not in SPEC_GENERATORS:
        raise SpecError(
            f"{where}: unknown generator {generator!r} "
            f"(registered: {', '.join(sorted(SPEC_GENERATORS))})"
        )
    declared_dtype, _ = SPEC_GENERATORS[generator]
    dtype = payload.get("dtype", declared_dtype)
    if dtype not in DTYPES:
        raise SpecError(f"{where}: unknown dtype {dtype!r} (expected one of {DTYPES})")
    if dtype != declared_dtype:
        raise SpecError(
            f"{where}: generator {generator!r} produces dtype "
            f"{declared_dtype!r}, but the column declares {dtype!r}"
        )
    label = payload.get("label")
    if label is not None and not is_semantic_type(label):
        raise SpecError(f"{where}: label {label!r} is not a known semantic type")
    params = dict(payload.get("params") or {})
    if generator == "semantic":
        semantic = params.get("type")
        if not semantic or not is_semantic_type(semantic):
            raise SpecError(
                f"{where}: semantic generator needs params.type set to a "
                f"known semantic type (got {semantic!r})"
            )
    if generator == "choice" and not params.get("values"):
        raise SpecError(f"{where}: choice generator needs non-empty params.values")
    if generator == "mixed":
        parts = params.get("parts") or []
        if not parts:
            raise SpecError(f"{where}: mixed generator needs non-empty params.parts")
        for part in parts:
            inner = part.get("generator")
            if inner not in SPEC_GENERATORS or inner == "mixed":
                raise SpecError(f"{where}: mixed part has invalid generator {inner!r}")
    if generator == "unicode_text":
        for script in params.get("scripts", []):
            if script not in SCRIPT_POOLS:
                raise SpecError(
                    f"{where}: unknown script {script!r} "
                    f"(available: {', '.join(sorted(SCRIPT_POOLS))})"
                )
    transforms = []
    for transform in payload.get("transforms") or []:
        transform_name = _require(transform, "name", f"{where}.transforms")
        if transform_name not in SPEC_TRANSFORMS:
            raise SpecError(
                f"{where}: unknown transform {transform_name!r} "
                f"(registered: {', '.join(sorted(SPEC_TRANSFORMS))})"
            )
        transforms.append((transform_name, dict(transform.get("params") or {})))
    missing_rate = float(payload.get("missing_rate", 0.0))
    if not 0.0 <= missing_rate < 1.0:
        raise SpecError(f"{where}: missing_rate must be in [0, 1)")
    return ColumnSpec(
        name=str(name),
        dtype=dtype,
        generator=generator,
        params=params,
        label=label,
        transforms=tuple(transforms),
        missing_rate=missing_rate,
    )


def _parse_scd(payload: dict | None, columns: Sequence[ColumnSpec], where: str):
    if payload is None:
        return None
    known = {column.name for column in columns}
    key_columns = tuple(payload.get("key_columns") or ())
    changing_columns = tuple(payload.get("changing_columns") or ())
    for column in (*key_columns, *changing_columns):
        if column not in known:
            raise SpecError(f"{where}.scd references unknown column {column!r}")
    if not changing_columns:
        raise SpecError(f"{where}.scd needs non-empty changing_columns")
    versions = int(payload.get("versions", 3))
    if versions < 2:
        raise SpecError(f"{where}.scd.versions must be >= 2")
    change_rate = float(payload.get("change_rate", 0.3))
    if not 0.0 < change_rate <= 1.0:
        raise SpecError(f"{where}.scd.change_rate must be in (0, 1]")
    return ScdSpec(
        versions=versions,
        change_rate=change_rate,
        key_columns=key_columns,
        changing_columns=changing_columns,
        valid_from_column=str(payload.get("valid_from_column", "validFrom")),
        start_year=int(payload.get("start_year", 2015)),
    )


def _parse_table(payload: dict, where: str) -> TableSpec:
    name = _require(payload, "name", where)
    where = f"{where}.{name}"
    raw_columns = _require(payload, "columns", where)
    if not raw_columns:
        raise SpecError(f"{where}: needs at least one column")
    columns = tuple(_parse_column(c, where) for c in raw_columns)
    names = [column.name for column in columns]
    if len(set(names)) != len(names):
        raise SpecError(f"{where}: duplicate column names")
    count = int(payload.get("count", 1))
    if count <= 0:
        raise SpecError(f"{where}: count must be positive")
    return TableSpec(
        name=str(name),
        columns=columns,
        count=count,
        rows=_parse_rows(payload.get("rows"), where),
        scd=_parse_scd(payload.get("scd"), columns, where),
    )


def parse_spec(payload: dict) -> CorpusSpec:
    """Validate a spec payload and return the typed :class:`CorpusSpec`."""
    if not isinstance(payload, dict):
        raise SpecError(f"spec must be an object, got {type(payload).__name__}")
    name = _require(payload, "name", "spec")
    raw_tables = _require(payload, "tables", f"spec {name}")
    if not raw_tables:
        raise SpecError(f"spec {name}: needs at least one table spec")
    tables = tuple(_parse_table(t, f"spec {name}") for t in raw_tables)
    table_names = [table.name for table in tables]
    if len(set(table_names)) != len(table_names):
        raise SpecError(f"spec {name}: duplicate table spec names")
    split_payload = payload.get("split") or {}
    test_fraction = float(split_payload.get("test_fraction", 0.5))
    if not 0.0 <= test_fraction <= 1.0:
        raise SpecError(f"spec {name}: split.test_fraction must be in [0, 1]")
    return CorpusSpec(
        name=str(name),
        seed=int(_require(payload, "seed", f"spec {name}")),
        tables=tables,
        description=str(payload.get("description", "")),
        difficulty=dict(payload.get("difficulty") or {}),
        split=SplitSpec(
            test_fraction=test_fraction,
            seed=int(split_payload.get("seed", 0)),
        ),
        version=int(payload.get("version", 1)),
    )


def load_spec(path: str | Path) -> CorpusSpec:
    """Load a spec file (``.json`` always; ``.yaml``/``.yml`` if PyYAML is
    importable — YAML support is gated so the core has zero extra deps)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as error:  # pragma: no cover - env-dependent
            raise SpecError(
                f"cannot load {path}: YAML specs need PyYAML installed; "
                "re-save the spec as JSON to avoid the dependency"
            ) from error
        payload = yaml.safe_load(text)
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"cannot parse {path}: {error}") from None
    return parse_spec(payload)


# --------------------------------------------------------------------------
# Building
# --------------------------------------------------------------------------


@dataclass
class CorpusBundle:
    """The deterministic output of one spec build."""

    spec: CorpusSpec
    tables: list[Table]
    #: table_id -> "train" | "test"; part of the determinism contract.
    split: dict[str, str]

    @property
    def train_tables(self) -> list[Table]:
        return [t for t in self.tables if self.split[t.table_id] == "train"]

    @property
    def test_tables(self) -> list[Table]:
        return [t for t in self.tables if self.split[t.table_id] == "test"]


def _generate_cell(column: ColumnSpec, rng: SpecRNG, ctx: RowContext) -> str:
    if column.missing_rate and rng.random() < column.missing_rate:
        return ""
    _, fn = SPEC_GENERATORS[column.generator]
    value = fn(rng, column.params, ctx)
    for transform_name, transform_params in column.transforms:
        value = SPEC_TRANSFORMS[transform_name](value, rng, transform_params)
    return value


def _build_rows(
    table_spec: TableSpec, n_rows: int, rng: SpecRNG
) -> list[dict[str, str]]:
    rows = []
    for _ in range(n_rows):
        ctx: RowContext = {}
        # Pre-seed shared entities so coordinated semantic columns (name /
        # birthPlace / city / country ...) stay row-coherent, exactly like
        # the seed-era table generator.
        semantic_types = {
            column.params.get("type")
            for column in table_spec.columns
            if column.generator == "semantic"
        }
        if semantic_types & _PERSON_TYPES:
            ctx["person"] = make_person(rng.np)
        if semantic_types & _PLACE_TYPES:
            ctx["place"] = make_place(rng.np)
        rows.append(
            {c.name: _generate_cell(c, rng, ctx) for c in table_spec.columns}
        )
    return rows


def _rows_to_table(
    table_spec: TableSpec,
    rows: list[dict[str, str]],
    table_id: str,
    metadata: dict,
) -> Table:
    columns = [
        Column(
            values=[row[column.name] for row in rows],
            header=column.name,
            semantic_type=column.label,
        )
        for column in table_spec.columns
    ]
    return Table(columns=columns, table_id=table_id, metadata=metadata)


def _build_scd_versions(
    table_spec: TableSpec,
    base_rows: list[dict[str, str]],
    table_id: str,
    rng: SpecRNG,
) -> list[Table]:
    """Emit SCD2-style re-versions: stable keys, mutating tracked columns."""
    scd = table_spec.scd
    assert scd is not None
    changing = {c.name: c for c in table_spec.columns if c.name in scd.changing_columns}
    tables = []
    rows = base_rows
    for version in range(scd.versions):
        if version > 0:
            next_rows = []
            for row_index, row in enumerate(rows):
                row = dict(row)
                row_rng = rng.child("scd", version, row_index)
                for name, column in changing.items():
                    if row_rng.random() < scd.change_rate:
                        row[name] = _generate_cell(column, row_rng, {})
                next_rows.append(row)
            rows = next_rows
        stamped = [
            {**row, scd.valid_from_column: str(scd.start_year + version)}
            for row in rows
        ]
        stamped_spec = TableSpec(
            name=table_spec.name,
            columns=(
                *table_spec.columns,
                ColumnSpec(
                    name=scd.valid_from_column,
                    dtype="date",
                    generator="date",
                    label="year",
                ),
            ),
            count=table_spec.count,
            rows=table_spec.rows,
        )
        tables.append(
            _rows_to_table(
                stamped_spec,
                stamped,
                f"{table_id}@v{version + 1}",
                {
                    "spec_table": table_spec.name,
                    "scd_version": version + 1,
                    "scd_key_columns": list(scd.key_columns),
                },
            )
        )
    return tables


def build_corpus(spec: CorpusSpec) -> CorpusBundle:
    """Materialise a spec into labelled tables plus split assignment.

    Determinism contract: same spec dict + same seed => bit-identical
    tables, labels, table ids, metadata and split assignment, regardless of
    process, platform or the order other specs were built in.
    """
    tables: list[Table] = []
    root = SpecRNG(spec.seed, spec.name)
    for table_spec in spec.tables:
        for index in range(table_spec.count):
            table_rng = root.child(table_spec.name, index)
            n_rows = table_spec.rows.sample(table_rng)
            rows = _build_rows(table_spec, n_rows, table_rng)
            table_id = f"{spec.name}/{table_spec.name}/{index:04d}"
            if table_spec.scd is not None:
                tables.extend(
                    _build_scd_versions(table_spec, rows, table_id, table_rng)
                )
            else:
                tables.append(
                    _rows_to_table(
                        table_spec,
                        rows,
                        table_id,
                        {"spec_table": table_spec.name, "n_rows": n_rows},
                    )
                )
    split: dict[str, str] = {}
    for table in tables:
        split_rng = SpecRNG(spec.split.seed, spec.name, "split", table.table_id)
        is_test = split_rng.random() < spec.split.test_fraction
        split[table.table_id] = "test" if is_test else "train"
    return CorpusBundle(spec=spec, tables=tables, split=split)
