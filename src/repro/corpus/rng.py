"""Deterministic randomness for corpus synthesis.

Every layer of corpus generation (table composition, cell values, noise,
spec-driven suites) draws from NumPy ``Generator`` streams.  Two things
used to be duplicated across ``generator.py``, ``generators.py`` and
``noise.py`` and have been consolidated here:

* :func:`pick` — the canonical uniform-choice idiom
  (``items[int(rng.integers(0, len(items)))]``).  Each module used to carry
  its own inline copy; they all route through this one now, so the
  consumption pattern (exactly one ``integers`` draw per pick) can never
  drift between layers.  Drift would silently change every seeded corpus.
* :class:`SpecRNG` — named, independently derived substreams.  The
  declarative spec layer (:mod:`repro.corpus.spec`) generates tables in a
  fixed tree (spec -> table spec -> table index -> row), and each node gets
  its own stream derived from the root seed and the node's path.  Adding a
  table to a spec therefore never shifts the values of the tables around
  it, which keeps spec files stable under editing.

The derivation is a BLAKE2b hash of the root seed and the path components,
so it is stable across processes, platforms and Python hash randomisation.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, TypeVar

import numpy as np

__all__ = ["SpecRNG", "derive_seed", "pick"]

T = TypeVar("T")


def pick(rng: np.random.Generator, items: Sequence[T]) -> T:
    """Uniformly choose one item, consuming exactly one ``integers`` draw.

    This is the single shared implementation of the choice idiom used by
    every corpus layer; see the module docstring for why it must not be
    re-implemented inline.
    """
    return items[int(rng.integers(0, len(items)))]


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from a root seed and a path of names/indices.

    Deterministic across processes (no ``hash()``), and well-distributed
    even for adjacent root seeds or paths.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root_seed)).encode("utf-8"))
    for component in path:
        digest.update(b"/")
        digest.update(str(component).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little")


class SpecRNG:
    """A named deterministic random stream with derivable substreams.

    Examples:
        >>> root = SpecRNG(13)
        >>> a = root.child("tables", 0).integers(0, 100)
        >>> b = SpecRNG(13).child("tables", 0).integers(0, 100)
        >>> a == b
        True
        >>> root.child("tables", 0).path
        (13, 'tables', 0)
    """

    def __init__(self, seed: int, *path: object) -> None:
        self.seed = int(seed)
        self.path: tuple = (self.seed, *path)
        self.np = np.random.default_rng(
            derive_seed(self.seed, *path) if path else self.seed
        )

    def child(self, *path: object) -> "SpecRNG":
        """A new independent stream for a sub-scope (no draws consumed)."""
        return SpecRNG(self.seed, *self.path[1:], *path)

    # Thin delegation: one call on SpecRNG is one call on the underlying
    # NumPy generator, so loops written against either consume identically.

    def pick(self, items: Sequence[T]) -> T:
        return pick(self.np, items)

    def integers(self, low: int, high: int) -> int:
        return int(self.np.integers(low, high))

    def random(self) -> float:
        return float(self.np.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self.np.uniform(low, high))

    def permutation(self, n: int) -> np.ndarray:
        return self.np.permutation(n)
