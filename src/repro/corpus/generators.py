"""Per-semantic-type value generators.

Each semantic type has a generator that produces one cell value.  Generators
receive a *row context* so that schemas can produce thematically coherent
rows: the same sampled person entity supplies ``name``, ``birthDate``,
``birthPlace``, ``age``, ``nationality`` and ``sex`` values, the same place
entity supplies ``city``, ``country``, ``state`` and ``continent``.

Crucially, several generators intentionally share vocabularies (``city``,
``birthPlace`` and ``location`` all emit city names; ``name``, ``person``,
``creator``, ``director``, ``owner`` and ``jockey`` all emit person names).
That shared support is what makes single-column prediction ambiguous and what
the topic and CRF modules of Sato disambiguate.

This module is the *cell* level of corpus synthesis; table-level
composition (schemas, slot selection, row coordination, noise) lives in
:mod:`repro.corpus.generator` — see that module's docstring for the split.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.corpus import vocab
from repro.corpus.rng import pick
from repro.types import SEMANTIC_TYPES

__all__ = [
    "RowContext",
    "make_person",
    "make_place",
    "generate_value",
    "VALUE_GENERATORS",
    "missing_generators",
]

RowContext = dict


def make_person(rng: np.random.Generator) -> dict:
    """Sample a coherent person entity used across person-related columns."""
    first = pick(rng, vocab.FIRST_NAMES)
    last = pick(rng, vocab.LAST_NAMES)
    birth_year = int(rng.integers(1900, 2005))
    birth_city = pick(rng, vocab.CITIES)
    sex = pick(rng, ["Male", "Female"])
    return {
        "first": first,
        "last": last,
        "full": f"{first} {last}",
        "birth_year": birth_year,
        "birth_month": int(rng.integers(1, 13)),
        "birth_day": int(rng.integers(1, 29)),
        "birth_city": birth_city,
        "birth_country": vocab.CITY_INFO[birth_city][0],
        "nationality": pick(rng, vocab.NATIONALITIES),
        "sex": sex,
        "occupation": pick(rng, vocab.OCCUPATIONS),
        "age": max(16, 2020 - birth_year - int(rng.integers(0, 3))),
    }


def make_place(rng: np.random.Generator) -> dict:
    """Sample a coherent place entity (city with its country/state/region)."""
    city = pick(rng, vocab.CITIES)
    country, state, continent, region = vocab.CITY_INFO[city]
    return {
        "city": city,
        "country": country,
        "state": state,
        "continent": continent,
        "region": region,
        "county": pick(rng, vocab.COUNTIES),
    }


def _person(ctx: RowContext, rng: np.random.Generator) -> dict:
    person = ctx.get("person")
    if person is None:
        person = make_person(rng)
        ctx["person"] = person
    return person


def _place(ctx: RowContext, rng: np.random.Generator) -> dict:
    place = ctx.get("place")
    if place is None:
        place = make_place(rng)
        ctx["place"] = place
    return place


def _person_name(rng: np.random.Generator, ctx: RowContext) -> str:
    return _person(ctx, rng)["full"]


def _other_person_name(rng: np.random.Generator, ctx: RowContext) -> str:
    first = pick(rng, vocab.FIRST_NAMES)
    last = pick(rng, vocab.LAST_NAMES)
    return f"{first} {last}"


def _gen_name(rng, ctx):
    return _person_name(rng, ctx)


def _gen_description(rng, ctx):
    return pick(rng, vocab.DESCRIPTION_PHRASES)


def _gen_team(rng, ctx):
    return pick(rng, vocab.TEAMS)


def _gen_type(rng, ctx):
    pool = vocab.CATEGORY_WORDS + vocab.CLASS_WORDS + vocab.FORMAT_WORDS
    return pick(rng, pool)


def _gen_age(rng, ctx):
    person = ctx.get("person")
    if person is not None:
        return str(person["age"])
    return str(int(rng.integers(16, 95)))


def _gen_location(rng, ctx):
    place = _place(ctx, rng)
    styles = ["city", "city_country", "venue"]
    style = pick(rng, styles)
    if style == "city":
        return place["city"]
    if style == "city_country":
        return f"{place['city']}, {place['country']}"
    venues = ["Stadium", "Arena", "Convention Center", "Park", "Hall", "Theatre"]
    return f"{place['city']} {pick(rng, venues)}"


def _gen_year(rng, ctx):
    return str(int(rng.integers(1900, 2021)))


def _gen_city(rng, ctx):
    return _place(ctx, rng)["city"]


def _gen_rank(rng, ctx):
    return str(int(rng.integers(1, 101)))


def _gen_status(rng, ctx):
    return pick(rng, vocab.STATUS_WORDS)


def _gen_state(rng, ctx):
    place = ctx.get("place")
    if place is not None and place["country"] == "United States":
        return place["state"]
    return pick(rng, vocab.US_STATES)


def _gen_category(rng, ctx):
    return pick(rng, vocab.CATEGORY_WORDS)


def _gen_weight(rng, ctx):
    styles = ["kg", "lb", "plain", "grams"]
    style = pick(rng, styles)
    value = float(rng.uniform(40, 140))
    if style == "kg":
        return f"{value:.1f} kg"
    if style == "lb":
        return f"{value * 2.2:.0f} lbs"
    if style == "grams":
        return f"{value * 1000:.0f} g"
    return f"{value:.1f}"


def _gen_code(rng, ctx):
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    n_letters = int(rng.integers(2, 5))
    prefix = "".join(pick(rng, list(letters)) for _ in range(n_letters))
    return f"{prefix}-{int(rng.integers(100, 10000))}"


def _gen_club(rng, ctx):
    return pick(rng, vocab.CLUBS)


def _gen_artist(rng, ctx):
    return pick(rng, vocab.ARTISTS)


def _gen_result(rng, ctx):
    return pick(rng, vocab.RESULT_WORDS)


def _gen_position(rng, ctx):
    if rng.random() < 0.6:
        return pick(rng, vocab.SPORT_POSITIONS)
    return str(int(rng.integers(1, 25)))


def _gen_country(rng, ctx):
    return _place(ctx, rng)["country"]


def _gen_notes(rng, ctx):
    return pick(rng, vocab.NOTE_PHRASES)


def _gen_class(rng, ctx):
    return pick(rng, vocab.CLASS_WORDS)


def _gen_company(rng, ctx):
    return pick(rng, vocab.COMPANIES)


def _gen_album(rng, ctx):
    return pick(rng, vocab.ALBUMS)


def _gen_symbol(rng, ctx):
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    n = int(rng.integers(2, 5))
    return "".join(pick(rng, list(letters)) for _ in range(n))


def _gen_address(rng, ctx):
    number = int(rng.integers(1, 9999))
    street = pick(rng, vocab.STREET_NAMES)
    suffix = pick(rng, vocab.STREET_SUFFIXES)
    if rng.random() < 0.4:
        city = _place(ctx, rng)["city"]
        return f"{number} {street} {suffix}, {city}"
    return f"{number} {street} {suffix}"


def _gen_duration(rng, ctx):
    style = pick(rng, ["mmss", "hms", "minutes", "seconds"])
    if style == "mmss":
        return f"{int(rng.integers(0, 60))}:{int(rng.integers(0, 60)):02d}"
    if style == "hms":
        return (
            f"{int(rng.integers(0, 4))}:{int(rng.integers(0, 60)):02d}"
            f":{int(rng.integers(0, 60)):02d}"
        )
    if style == "minutes":
        return f"{int(rng.integers(1, 240))} min"
    return f"{int(rng.integers(1, 5000))} s"


def _gen_format(rng, ctx):
    return pick(rng, vocab.FORMAT_WORDS)


def _gen_county(rng, ctx):
    return _place(ctx, rng)["county"]


def _gen_day(rng, ctx):
    if rng.random() < 0.7:
        return pick(rng, vocab.DAYS)
    return str(int(rng.integers(1, 32)))


def _gen_gender(rng, ctx):
    person = ctx.get("person")
    if person is not None and rng.random() < 0.8:
        return person["sex"]
    return pick(rng, vocab.GENDERS)


def _gen_industry(rng, ctx):
    return pick(rng, vocab.INDUSTRIES)


def _gen_language(rng, ctx):
    return pick(rng, vocab.LANGUAGES)


def _gen_sex(rng, ctx):
    person = ctx.get("person")
    if person is not None and rng.random() < 0.8:
        return person["sex"]
    return pick(rng, vocab.SEXES)


def _gen_product(rng, ctx):
    return pick(rng, vocab.PRODUCTS)


def _gen_jockey(rng, ctx):
    return _other_person_name(rng, ctx)


def _gen_region(rng, ctx):
    place = ctx.get("place")
    if place is not None and rng.random() < 0.6:
        return place["region"]
    return pick(rng, vocab.REGIONS)


def _gen_area(rng, ctx):
    style = pick(rng, ["km2", "sqmi", "plain", "hectare"])
    value = float(rng.uniform(1, 20000))
    if style == "km2":
        return f"{value:,.1f} km2"
    if style == "sqmi":
        return f"{value / 2.59:,.1f} sq mi"
    if style == "hectare":
        return f"{value * 100:,.0f} ha"
    return f"{value:,.1f}"


def _gen_service(rng, ctx):
    return pick(rng, vocab.SERVICE_WORDS)


def _gen_team_name(rng, ctx):
    city = pick(rng, vocab.CITIES)
    team = pick(rng, vocab.TEAMS)
    return f"{city} {team}"


def _gen_order(rng, ctx):
    if rng.random() < 0.5:
        return str(int(rng.integers(1, 1000)))
    return f"ORD-{int(rng.integers(10000, 99999))}"


def _gen_isbn(rng, ctx):
    if rng.random() < 0.5:
        groups = [
            "978",
            str(int(rng.integers(0, 10))),
            str(int(rng.integers(100, 1000))),
            str(int(rng.integers(10000, 100000))),
            str(int(rng.integers(0, 10))),
        ]
        return "-".join(groups)
    return str(int(rng.integers(10 ** 9, 10 ** 10)))


def _gen_file_size(rng, ctx):
    unit = pick(rng, ["KB", "MB", "GB", "bytes"])
    value = float(rng.uniform(1, 900))
    if unit == "bytes":
        return f"{int(value * 1024)}"
    return f"{value:.1f} {unit}"


def _gen_grades(rng, ctx):
    return pick(rng, vocab.GRADES)


def _gen_publisher(rng, ctx):
    return pick(rng, vocab.PUBLISHERS)


def _gen_plays(rng, ctx):
    return str(int(rng.integers(0, 500)))


def _gen_origin(rng, ctx):
    place = _place(ctx, rng)
    if rng.random() < 0.5:
        return place["country"]
    return place["city"]


def _gen_elevation(rng, ctx):
    style = pick(rng, ["m", "ft", "plain"])
    value = float(rng.uniform(-50, 4500))
    if style == "m":
        return f"{value:.0f} m"
    if style == "ft":
        return f"{value * 3.28:.0f} ft"
    return f"{value:.0f}"


def _gen_affiliation(rng, ctx):
    return pick(rng, vocab.AFFILIATIONS)


def _gen_component(rng, ctx):
    return pick(rng, vocab.COMPONENT_WORDS)


def _gen_owner(rng, ctx):
    if rng.random() < 0.6:
        return _other_person_name(rng, ctx)
    return pick(rng, vocab.COMPANIES)


def _gen_genre(rng, ctx):
    return pick(rng, vocab.GENRES)


def _gen_manufacturer(rng, ctx):
    return pick(rng, vocab.MANUFACTURERS)


def _gen_brand(rng, ctx):
    return pick(rng, vocab.BRANDS)


def _gen_family(rng, ctx):
    return pick(rng, vocab.FAMILIES)


def _gen_credit(rng, ctx):
    if rng.random() < 0.5:
        return str(int(rng.integers(1, 30)))
    return _other_person_name(rng, ctx)


def _gen_depth(rng, ctx):
    style = pick(rng, ["m", "ft", "cm", "plain"])
    value = float(rng.uniform(0.1, 1000))
    if style == "m":
        return f"{value:.1f} m"
    if style == "ft":
        return f"{value * 3.28:.1f} ft"
    if style == "cm":
        return f"{value * 100:.0f} cm"
    return f"{value:.1f}"


def _gen_classification(rng, ctx):
    pool = vocab.CLASS_WORDS + vocab.CATEGORY_WORDS
    return pick(rng, pool)


def _gen_collection(rng, ctx):
    return pick(rng, vocab.COLLECTION_WORDS)


def _gen_species(rng, ctx):
    return pick(rng, vocab.SPECIES)


def _gen_command(rng, ctx):
    return pick(rng, vocab.COMMAND_WORDS)


def _gen_nationality(rng, ctx):
    person = ctx.get("person")
    if person is not None and rng.random() < 0.8:
        return person["nationality"]
    return pick(rng, vocab.NATIONALITIES)


def _gen_currency(rng, ctx):
    return pick(rng, vocab.CURRENCIES)


def _gen_range(rng, ctx):
    low = int(rng.integers(0, 500))
    high = low + int(rng.integers(1, 500))
    style = pick(rng, ["dash", "to", "km"])
    if style == "dash":
        return f"{low}-{high}"
    if style == "to":
        return f"{low} to {high}"
    return f"{low} km"


def _gen_affiliate(rng, ctx):
    if rng.random() < 0.5:
        return pick(rng, vocab.AFFILIATIONS)
    return pick(rng, vocab.COMPANIES)


def _gen_birth_date(rng, ctx):
    person = _person(ctx, rng)
    style = pick(rng, ["iso", "us", "long"])
    year, month, day = person["birth_year"], person["birth_month"], person["birth_day"]
    if style == "iso":
        return f"{year}-{month:02d}-{day:02d}"
    if style == "us":
        return f"{month}/{day}/{year}"
    return f"{vocab.MONTHS[month - 1]} {day}, {year}"


def _gen_ranking(rng, ctx):
    return str(int(rng.integers(1, 250)))


def _gen_capacity(rng, ctx):
    style = pick(rng, ["plain", "comma", "liters"])
    value = int(rng.integers(100, 100000))
    if style == "comma":
        return f"{value:,}"
    if style == "liters":
        return f"{int(rng.integers(1, 500))} L"
    return str(value)


def _gen_birth_place(rng, ctx):
    person = ctx.get("person")
    if person is not None:
        if ctx.get("_rng_birthplace_country", rng.random()) < 0.3:
            return person["birth_country"]
        return person["birth_city"]
    return pick(rng, vocab.CITIES)


def _gen_person(rng, ctx):
    return _person_name(rng, ctx)


def _gen_creator(rng, ctx):
    return _other_person_name(rng, ctx)


def _gen_operator(rng, ctx):
    return pick(rng, vocab.OPERATORS)


def _gen_religion(rng, ctx):
    return pick(rng, vocab.RELIGIONS)


def _gen_education(rng, ctx):
    return pick(rng, vocab.EDUCATION_LEVELS)


def _gen_requirement(rng, ctx):
    return pick(rng, vocab.REQUIREMENT_WORDS)


def _gen_director(rng, ctx):
    return _other_person_name(rng, ctx)


def _gen_sales(rng, ctx):
    style = pick(rng, ["plain", "comma", "currency", "millions"])
    value = int(rng.integers(100, 10_000_000))
    if style == "comma":
        return f"{value:,}"
    if style == "currency":
        return f"${value:,}"
    if style == "millions":
        return f"{value / 1_000_000:.1f}M"
    return str(value)


def _gen_continent(rng, ctx):
    place = ctx.get("place")
    if place is not None and rng.random() < 0.7:
        return place["continent"]
    return pick(rng, vocab.CONTINENTS)


def _gen_organisation(rng, ctx):
    return pick(rng, vocab.ORGANISATIONS)


#: Mapping from semantic type label to its value generator.
VALUE_GENERATORS: dict[str, Callable[[np.random.Generator, RowContext], str]] = {
    "name": _gen_name,
    "description": _gen_description,
    "team": _gen_team,
    "type": _gen_type,
    "age": _gen_age,
    "location": _gen_location,
    "year": _gen_year,
    "city": _gen_city,
    "rank": _gen_rank,
    "status": _gen_status,
    "state": _gen_state,
    "category": _gen_category,
    "weight": _gen_weight,
    "code": _gen_code,
    "club": _gen_club,
    "artist": _gen_artist,
    "result": _gen_result,
    "position": _gen_position,
    "country": _gen_country,
    "notes": _gen_notes,
    "class": _gen_class,
    "company": _gen_company,
    "album": _gen_album,
    "symbol": _gen_symbol,
    "address": _gen_address,
    "duration": _gen_duration,
    "format": _gen_format,
    "county": _gen_county,
    "day": _gen_day,
    "gender": _gen_gender,
    "industry": _gen_industry,
    "language": _gen_language,
    "sex": _gen_sex,
    "product": _gen_product,
    "jockey": _gen_jockey,
    "region": _gen_region,
    "area": _gen_area,
    "service": _gen_service,
    "teamName": _gen_team_name,
    "order": _gen_order,
    "isbn": _gen_isbn,
    "fileSize": _gen_file_size,
    "grades": _gen_grades,
    "publisher": _gen_publisher,
    "plays": _gen_plays,
    "origin": _gen_origin,
    "elevation": _gen_elevation,
    "affiliation": _gen_affiliation,
    "component": _gen_component,
    "owner": _gen_owner,
    "genre": _gen_genre,
    "manufacturer": _gen_manufacturer,
    "brand": _gen_brand,
    "family": _gen_family,
    "credit": _gen_credit,
    "depth": _gen_depth,
    "classification": _gen_classification,
    "collection": _gen_collection,
    "species": _gen_species,
    "command": _gen_command,
    "nationality": _gen_nationality,
    "currency": _gen_currency,
    "range": _gen_range,
    "affiliate": _gen_affiliate,
    "birthDate": _gen_birth_date,
    "ranking": _gen_ranking,
    "capacity": _gen_capacity,
    "birthPlace": _gen_birth_place,
    "person": _gen_person,
    "creator": _gen_creator,
    "operator": _gen_operator,
    "religion": _gen_religion,
    "education": _gen_education,
    "requirement": _gen_requirement,
    "director": _gen_director,
    "sales": _gen_sales,
    "continent": _gen_continent,
    "organisation": _gen_organisation,
}


def missing_generators() -> list[str]:
    """Semantic types without a registered generator (should be empty)."""
    return [t for t in SEMANTIC_TYPES if t not in VALUE_GENERATORS]


def generate_value(
    semantic_type: str,
    rng: np.random.Generator,
    context: RowContext | None = None,
) -> str:
    """Generate one cell value of the given semantic type."""
    if semantic_type not in VALUE_GENERATORS:
        raise KeyError(f"no value generator for semantic type {semantic_type!r}")
    generator = VALUE_GENERATORS[semantic_type]
    return generator(rng, context if context is not None else {})
