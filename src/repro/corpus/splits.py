"""Dataset containers and cross-validation splits.

The paper evaluates on two datasets — ``D`` (all 80K tables) and ``Dmult``
(the 33K tables with more than one column) — with 5-fold cross-validation at
the *table* level (80% train / 20% test per fold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.tables import Table

__all__ = [
    "Dataset",
    "KFoldSplit",
    "multi_column_only",
    "train_test_split",
    "kfold_split",
]


@dataclass
class Dataset:
    """A named collection of labelled tables."""

    tables: list[Table]
    name: str = "D"

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)

    @property
    def n_columns(self) -> int:
        """Total number of columns across all tables."""
        return sum(t.n_columns for t in self.tables)

    @property
    def n_labeled_columns(self) -> int:
        """Total number of columns with a ground-truth label."""
        return sum(1 for t in self.tables for c in t.columns if c.has_label)

    def multi_column(self, name: str | None = None) -> "Dataset":
        """Return the Dmult view: tables with more than one column."""
        return Dataset(
            tables=[t for t in self.tables if t.n_columns > 1],
            name=name or f"{self.name}mult",
        )


@dataclass
class KFoldSplit:
    """One fold of a k-fold split."""

    fold: int
    train: list[Table]
    test: list[Table]


def multi_column_only(tables: Iterable[Table]) -> list[Table]:
    """Filter out singleton tables (they lack table context)."""
    return [t for t in tables if t.n_columns > 1]


def train_test_split(
    tables: Sequence[Table],
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[list[Table], list[Table]]:
    """Random table-level train/test split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(tables))
    n_test = max(1, int(round(len(tables) * test_fraction)))
    test_idx = set(order[:n_test].tolist())
    train = [tables[i] for i in range(len(tables)) if i not in test_idx]
    test = [tables[i] for i in range(len(tables)) if i in test_idx]
    return train, test


def kfold_split(
    tables: Sequence[Table],
    k: int = 5,
    seed: int = 0,
) -> list[KFoldSplit]:
    """Table-level k-fold cross-validation splits.

    Every table appears in exactly one test fold; folds differ in size by at
    most one table.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if len(tables) < k:
        raise ValueError(f"cannot split {len(tables)} tables into {k} folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(tables))
    folds = np.array_split(order, k)
    splits: list[KFoldSplit] = []
    for fold_index, test_indices in enumerate(folds):
        test_set = set(test_indices.tolist())
        train = [tables[i] for i in range(len(tables)) if i not in test_set]
        test = [tables[i] for i in range(len(tables)) if i in test_set]
        splits.append(KFoldSplit(fold=fold_index, train=train, test=test))
    return splits
