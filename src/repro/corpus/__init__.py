"""Synthetic WebTables-style corpus.

The VizNet WebTables sample used in the paper is not available offline, so
this package builds the closest synthetic equivalent: tables are drawn from
"intent" schemas (people, cities, sports results, books, businesses, ...),
each schema produces thematically coherent columns over the 78 semantic
types, type frequencies follow a long-tailed distribution, and realistic
noise (missing cells, typos, formatting variation) is injected.

The resulting corpus exhibits the three statistical properties Sato relies
on: per-type value distributions (single-column signal), table-level thematic
coherence (global context / topic signal), and adjacent-column type
co-occurrence (local context / CRF signal).
"""

from repro.corpus.config import CorpusConfig, NoiseConfig
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.corpus.splits import (
    Dataset,
    KFoldSplit,
    kfold_split,
    multi_column_only,
    train_test_split,
)
from repro.corpus.statistics import (
    cooccurrence_matrix,
    adjacent_cooccurrence_matrix,
    type_counts,
)

__all__ = [
    "CorpusConfig",
    "NoiseConfig",
    "CorpusGenerator",
    "generate_corpus",
    "Dataset",
    "KFoldSplit",
    "kfold_split",
    "multi_column_only",
    "train_test_split",
    "type_counts",
    "cooccurrence_matrix",
    "adjacent_cooccurrence_matrix",
]
