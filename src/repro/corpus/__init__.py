"""Synthetic WebTables-style corpus.

The VizNet WebTables sample used in the paper is not available offline, so
this package builds the closest synthetic equivalent: tables are drawn from
"intent" schemas (people, cities, sports results, books, businesses, ...),
each schema produces thematically coherent columns over the 78 semantic
types, type frequencies follow a long-tailed distribution, and realistic
noise (missing cells, typos, formatting variation) is injected.

The resulting corpus exhibits the three statistical properties Sato relies
on: per-type value distributions (single-column signal), table-level thematic
coherence (global context / topic signal), and adjacent-column type
co-occurrence (local context / CRF signal).

Two front doors:

* :class:`CorpusConfig` + :class:`CorpusGenerator` — the original knob-based
  generator (size, noise level, seed),
* :mod:`repro.corpus.spec` — the declarative route: a JSON/YAML spec names
  every table layout, generator and constraint, and :func:`build_corpus`
  turns it into a deterministic corpus.  The shipped hard-case eval suites
  under ``specs/`` (:mod:`repro.corpus.suites`) are built this way.
"""

from repro.corpus.config import CorpusConfig, NoiseConfig
from repro.corpus.generator import CorpusGenerator, generate_corpus
from repro.corpus.rng import SpecRNG, derive_seed, pick
from repro.corpus.spec import (
    ColumnSpec,
    CorpusBundle,
    CorpusSpec,
    RowsSpec,
    ScdSpec,
    SpecError,
    SplitSpec,
    TableSpec,
    build_corpus,
    load_spec,
    parse_spec,
)
from repro.corpus.splits import (
    Dataset,
    KFoldSplit,
    kfold_split,
    multi_column_only,
    train_test_split,
)
from repro.corpus.statistics import (
    cooccurrence_matrix,
    adjacent_cooccurrence_matrix,
    type_counts,
)
from repro.corpus.suites import (
    SUITE_PRESETS,
    available_suites,
    build_suite,
    load_suite_spec,
    scale_spec,
    suite_manifest,
)

__all__ = [
    "CorpusConfig",
    "NoiseConfig",
    "CorpusGenerator",
    "generate_corpus",
    "SpecRNG",
    "derive_seed",
    "pick",
    "ColumnSpec",
    "CorpusBundle",
    "CorpusSpec",
    "RowsSpec",
    "ScdSpec",
    "SpecError",
    "SplitSpec",
    "TableSpec",
    "build_corpus",
    "load_spec",
    "parse_spec",
    "SUITE_PRESETS",
    "available_suites",
    "build_suite",
    "load_suite_spec",
    "scale_spec",
    "suite_manifest",
    "Dataset",
    "KFoldSplit",
    "kfold_split",
    "multi_column_only",
    "train_test_split",
    "type_counts",
    "cooccurrence_matrix",
    "adjacent_cooccurrence_matrix",
]
