"""Synthetic WebTables-style corpus generator (the *table* level).

The generator samples a table *intent* (schema), selects which of the
schema's column slots are present, samples coherent row entities, generates
cell values via the per-type generators, injects noise, and packages the
result into :class:`~repro.tables.Table` objects with ground-truth labels.

Despite the similar names, this module and :mod:`repro.corpus.generators`
are different layers, not duplicates: this module owns table-level
composition (schema sampling, slot selection, row-entity coordination,
noise injection, packaging), while ``generators.py`` owns the *cell*
level — one value-generator function per semantic type plus the shared
person/place entity builders.  The only coupling is this module calling
``generate_value``/``make_person``/``make_place``; nothing is defined in
both.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.config import CorpusConfig
from repro.corpus.generators import generate_value, make_person, make_place
from repro.corpus.noise import apply_cell_noise, apply_header_noise
from repro.corpus.rng import pick
from repro.corpus.schemas import DEFAULT_SCHEMAS, TableSchema
from repro.tables import Column, Table

__all__ = ["CorpusGenerator", "generate_corpus"]

#: Semantic types whose values are coordinated through the person entity.
_PERSON_TYPES = {
    "name", "age", "birthDate", "birthPlace", "nationality", "sex", "gender", "person",
}
#: Semantic types whose values are coordinated through the place entity.
_PLACE_TYPES = {
    "city", "country", "state", "continent", "region", "county", "location", "origin",
}


class CorpusGenerator:
    """Generates a labelled corpus of synthetic tables.

    Parameters
    ----------
    config:
        Corpus size, noise and sampling configuration.
    schemas:
        Intent library to draw from; defaults to the built-in 35 intents.
    """

    def __init__(
        self,
        config: CorpusConfig | None = None,
        schemas: tuple[TableSchema, ...] = DEFAULT_SCHEMAS,
    ) -> None:
        self.config = config or CorpusConfig()
        self.config.validate()
        if not schemas:
            raise ValueError("at least one schema is required")
        self.schemas = schemas
        weights = np.array([s.weight for s in schemas], dtype=float)
        weights = weights ** self.config.schema_weight_power
        self._schema_probs = weights / weights.sum()
        self._rng = np.random.default_rng(self.config.seed)

    def generate(self, n_tables: int | None = None) -> list[Table]:
        """Generate ``n_tables`` tables (defaults to the configured count)."""
        count = self.config.n_tables if n_tables is None else int(n_tables)
        return [self.generate_table(table_id=f"t{i:06d}") for i in range(count)]

    def generate_table(self, table_id: str | None = None) -> Table:
        """Generate one table."""
        rng = self._rng
        schema = self._sample_schema(rng)
        types = self._sample_column_types(schema, rng)
        if rng.random() < self.config.singleton_rate:
            types = [pick(rng, types)]
        n_rows = int(rng.integers(self.config.min_rows, self.config.max_rows + 1))
        columns = self._generate_columns(types, n_rows, rng)
        return Table(
            columns=columns,
            table_id=table_id,
            metadata={"intent": schema.name, "n_rows": n_rows},
        )

    def _sample_schema(self, rng: np.random.Generator) -> TableSchema:
        index = int(rng.choice(len(self.schemas), p=self._schema_probs))
        return self.schemas[index]

    def _sample_column_types(
        self, schema: TableSchema, rng: np.random.Generator
    ) -> list[str]:
        selected = [
            slot.semantic_type
            for slot in schema.slots
            if rng.random() < slot.probability
        ]
        if len(selected) < schema.min_columns:
            # Force-include the most probable missing slots, preserving order.
            missing = [s for s in schema.slots if s.semantic_type not in selected]
            missing.sort(key=lambda s: -s.probability)
            need = schema.min_columns - len(selected)
            forced = {s.semantic_type for s in missing[:need]}
            selected = [
                slot.semantic_type
                for slot in schema.slots
                if slot.semantic_type in set(selected) | forced
            ]
        return selected

    def _generate_columns(
        self, types: list[str], n_rows: int, rng: np.random.Generator
    ) -> list[Column]:
        noise = self.config.noise
        raw_rows: list[dict[str, str]] = []
        for _ in range(n_rows):
            context: dict = {}
            if any(t in _PERSON_TYPES for t in types):
                context["person"] = make_person(rng)
            if any(t in _PLACE_TYPES for t in types):
                context["place"] = make_place(rng)
            # dict.fromkeys keeps first-occurrence order: iteration must be
            # deterministic (a set here would vary with PYTHONHASHSEED and
            # break corpus reproducibility across runs).
            raw_rows.append(
                {t: generate_value(t, rng, context) for t in dict.fromkeys(types)}
            )
        columns: list[Column] = []
        for semantic_type in types:
            values = [
                apply_cell_noise(row[semantic_type], noise, rng) for row in raw_rows
            ]
            header = apply_header_noise(semantic_type, noise, rng)
            columns.append(
                Column(values=values, header=header, semantic_type=semantic_type)
            )
        return columns


def generate_corpus(
    n_tables: int = 1000,
    seed: int = 13,
    config: CorpusConfig | None = None,
) -> list[Table]:
    """Convenience wrapper: generate a corpus with default settings."""
    if config is None:
        config = CorpusConfig(n_tables=n_tables, seed=seed)
    generator = CorpusGenerator(config)
    return generator.generate()
