"""Corpus statistics: type counts and co-occurrence matrices.

These statistics reproduce Figure 5 (long-tailed type counts) and Figure 6
(log-scale co-occurrence heatmap) and also provide the co-occurrence
initialisation of the CRF pairwise potentials (Section 4.3).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.tables import Table
from repro.types import NUM_TYPES, TYPE_TO_INDEX

__all__ = [
    "type_counts",
    "cooccurrence_matrix",
    "adjacent_cooccurrence_matrix",
    "top_cooccurring_pairs",
    "log_cooccurrence",
]


def type_counts(tables: Iterable[Table]) -> Counter:
    """Count labelled columns per semantic type (Figure 5)."""
    counts: Counter = Counter()
    for table in tables:
        for column in table.columns:
            if column.semantic_type is not None:
                counts[column.semantic_type] += 1
    return counts


def cooccurrence_matrix(tables: Iterable[Table]) -> np.ndarray:
    """Count how often two semantic types occur in the same table (Figure 6).

    The matrix is symmetric; the diagonal counts tables containing at least
    two columns of the same type (the paper notes non-zero diagonals).
    """
    matrix = np.zeros((NUM_TYPES, NUM_TYPES), dtype=np.float64)
    for table in tables:
        indices = [
            TYPE_TO_INDEX[c.semantic_type]
            for c in table.columns
            if c.semantic_type in TYPE_TO_INDEX
        ]
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                matrix[a, b] += 1.0
                if a != b:
                    matrix[b, a] += 1.0
    return matrix


def adjacent_cooccurrence_matrix(tables: Iterable[Table]) -> np.ndarray:
    """Count co-occurrences restricted to *adjacent* columns.

    This is the statistic used to initialise the CRF pairwise potentials: the
    paper expects the pairwise weight of two types to be proportional to
    their frequency of co-occurrence in adjacent columns.
    """
    matrix = np.zeros((NUM_TYPES, NUM_TYPES), dtype=np.float64)
    for table in tables:
        indices = [
            TYPE_TO_INDEX.get(c.semantic_type, -1) for c in table.columns
        ]
        for a, b in zip(indices, indices[1:]):
            if a < 0 or b < 0:
                continue
            matrix[a, b] += 1.0
            if a != b:
                matrix[b, a] += 1.0
    return matrix


def log_cooccurrence(matrix: np.ndarray) -> np.ndarray:
    """Log-scale a co-occurrence matrix the way Figure 6 is plotted."""
    return np.log1p(np.asarray(matrix, dtype=np.float64))


def top_cooccurring_pairs(
    matrix: np.ndarray, k: int = 10, type_names: Sequence[str] | None = None
) -> list[tuple[str, str, float]]:
    """Return the ``k`` most frequent distinct type pairs from a matrix."""
    from repro.types import SEMANTIC_TYPES

    names = list(type_names) if type_names is not None else list(SEMANTIC_TYPES)
    matrix = np.asarray(matrix, dtype=np.float64)
    pairs: list[tuple[str, str, float]] = []
    n = matrix.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if matrix[i, j] > 0:
                pairs.append((names[i], names[j], float(matrix[i, j])))
    pairs.sort(key=lambda item: -item[2])
    return pairs[:k]
