"""Table intent schemas.

A schema models the *intent* behind a table (Section 3.2 of the paper): a
thematically coherent set of semantic types a table author would combine.
Each schema lists column slots in a natural order together with the
probability of that slot being present in a sampled table.  Head types
(``name``, ``year``, ``type`` ...) appear in many schemas, tail types
(``organisation``, ``continent``, ``director`` ...) in few — this is what
produces the long-tailed type distribution of Figure 5 and the co-occurrence
structure of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import SEMANTIC_TYPES

__all__ = ["ColumnSlot", "TableSchema", "DEFAULT_SCHEMAS", "schema_by_name", "uncovered_types"]


@dataclass(frozen=True)
class ColumnSlot:
    """One potential column of a schema."""

    semantic_type: str
    probability: float = 1.0


@dataclass(frozen=True)
class TableSchema:
    """A table intent: an ordered collection of column slots.

    Parameters
    ----------
    name:
        Human-readable intent name (e.g. ``"people_biography"``).
    slots:
        Ordered column slots with inclusion probabilities.
    weight:
        Relative sampling weight of the intent in the corpus; weights are
        long-tailed across schemas.
    min_columns:
        Minimum number of columns a sampled table must have; slots are
        force-included (in slot order, by descending probability) if the
        random draw selects fewer.
    """

    name: str
    slots: tuple[ColumnSlot, ...]
    weight: float = 1.0
    min_columns: int = 2

    @property
    def semantic_types(self) -> list[str]:
        """All semantic types this intent can express."""
        return [slot.semantic_type for slot in self.slots]


def _schema(name, weight, min_columns, *slots):
    return TableSchema(
        name=name,
        weight=weight,
        min_columns=min_columns,
        slots=tuple(ColumnSlot(t, p) for t, p in slots),
    )


#: The default intent library: ~35 intents covering all 78 semantic types.
DEFAULT_SCHEMAS: tuple[TableSchema, ...] = (
    _schema(
        "people_biography", 8.0, 2,
        ("name", 1.0), ("age", 0.55), ("birthDate", 0.4), ("birthPlace", 0.5),
        ("nationality", 0.4), ("sex", 0.3), ("gender", 0.15), ("education", 0.15),
        ("religion", 0.1), ("description", 0.3),
    ),
    _schema(
        "world_cities", 6.0, 2,
        ("city", 1.0), ("country", 0.8), ("state", 0.3), ("continent", 0.2),
        ("area", 0.3), ("elevation", 0.3), ("region", 0.3),
    ),
    _schema(
        "us_locations", 6.0, 2,
        ("city", 0.9), ("state", 0.9), ("county", 0.5), ("address", 0.4),
        ("location", 0.3),
    ),
    _schema(
        "sports_results", 8.0, 2,
        ("rank", 0.7), ("name", 0.85), ("team", 0.7), ("position", 0.5),
        ("result", 0.6), ("plays", 0.3), ("age", 0.4),
    ),
    _schema(
        "football_squad", 5.0, 2,
        ("club", 1.0), ("position", 0.5), ("name", 0.7), ("nationality", 0.4),
        ("age", 0.4), ("weight", 0.3),
    ),
    _schema(
        "horse_racing", 2.0, 2,
        ("jockey", 1.0), ("rank", 0.6), ("result", 0.5), ("age", 0.4),
        ("weight", 0.5), ("owner", 0.4),
    ),
    _schema(
        "music_albums", 5.0, 2,
        ("artist", 1.0), ("album", 0.9), ("year", 0.6), ("genre", 0.5),
        ("duration", 0.4), ("format", 0.3), ("plays", 0.3),
    ),
    _schema(
        "books_magazines", 4.0, 2,
        ("symbol", 0.4), ("company", 0.4), ("isbn", 0.8), ("publisher", 0.7),
        ("creator", 0.4), ("year", 0.5), ("sales", 0.35), ("format", 0.3),
        ("description", 0.3),
    ),
    _schema(
        "business_listings", 6.0, 2,
        ("code", 0.75), ("description", 0.7), ("company", 0.8), ("symbol", 0.5),
        ("industry", 0.4), ("sales", 0.2),
    ),
    _schema(
        "product_catalog", 6.0, 2,
        ("product", 0.9), ("brand", 0.6), ("manufacturer", 0.4), ("category", 0.6),
        ("weight", 0.4), ("status", 0.3), ("code", 0.4),
    ),
    _schema(
        "file_listing", 3.0, 2,
        ("name", 0.5), ("fileSize", 0.85), ("format", 0.7), ("type", 0.5),
        ("description", 0.4), ("code", 0.3), ("day", 0.2),
    ),
    _schema(
        "event_schedule", 5.0, 2,
        ("day", 0.7), ("year", 0.5), ("location", 0.7), ("status", 0.45),
        ("notes", 0.4), ("duration", 0.3),
    ),
    _schema(
        "student_records", 3.0, 2,
        ("name", 0.9), ("grades", 0.8), ("class", 0.6), ("age", 0.4),
        ("education", 0.3), ("status", 0.3), ("requirement", 0.15),
    ),
    _schema(
        "ngo_directory", 2.0, 2,
        ("organisation", 0.9), ("affiliation", 0.5), ("country", 0.4),
        ("type", 0.3), ("notes", 0.3),
    ),
    _schema(
        "transport_services", 3.0, 2,
        ("operator", 0.85), ("service", 0.7), ("capacity", 0.5), ("status", 0.4),
        ("range", 0.3), ("day", 0.3),
    ),
    _schema(
        "species_taxonomy", 2.0, 2,
        ("species", 0.9), ("family", 0.8), ("classification", 0.5),
        ("status", 0.3), ("region", 0.3),
    ),
    _schema(
        "hardware_components", 3.0, 2,
        ("component", 0.9), ("manufacturer", 0.5), ("code", 0.4), ("capacity", 0.3),
        ("weight", 0.3), ("status", 0.3),
    ),
    _schema(
        "film_catalog", 4.0, 2,
        ("name", 0.8), ("director", 0.6), ("year", 0.6), ("genre", 0.6),
        ("duration", 0.4), ("creator", 0.25),
    ),
    _schema(
        "stock_markets", 3.0, 2,
        ("symbol", 0.9), ("company", 0.8), ("currency", 0.5), ("sales", 0.3),
        ("ranking", 0.3),
    ),
    _schema(
        "museum_collections", 2.0, 2,
        ("collection", 0.9), ("creator", 0.4), ("year", 0.4), ("category", 0.4),
        ("owner", 0.3),
    ),
    _schema(
        "command_reference", 2.0, 2,
        ("command", 0.9), ("description", 0.7), ("requirement", 0.35),
        ("notes", 0.3),
    ),
    _schema(
        "league_standings", 5.0, 2,
        ("teamName", 0.85), ("city", 0.5), ("rank", 0.6), ("result", 0.5),
        ("plays", 0.45),
    ),
    _schema(
        "physical_geography", 3.0, 2,
        ("location", 0.7), ("elevation", 0.6), ("area", 0.5), ("depth", 0.45),
        ("region", 0.4), ("country", 0.4),
    ),
    _schema(
        "shipping_orders", 4.0, 2,
        ("order", 0.85), ("product", 0.6), ("status", 0.6), ("address", 0.5),
        ("notes", 0.3), ("sales", 0.2),
    ),
    _schema(
        "memberships", 3.0, 2,
        ("person", 0.8), ("affiliate", 0.5), ("affiliation", 0.5), ("status", 0.4),
        ("credit", 0.35),
    ),
    _schema(
        "ethnolinguistic", 2.0, 2,
        ("language", 0.85), ("country", 0.6), ("nationality", 0.4),
        ("religion", 0.3), ("continent", 0.3),
    ),
    _schema(
        "fitness_registry", 3.0, 2,
        ("name", 0.8), ("age", 0.7), ("weight", 0.7), ("gender", 0.5),
        ("result", 0.3),
    ),
    _schema(
        "broadcast_stations", 2.0, 2,
        ("affiliate", 0.7), ("owner", 0.5), ("city", 0.5), ("state", 0.4),
        ("format", 0.4),
    ),
    _schema(
        "employment_records", 3.0, 2,
        ("name", 0.8), ("company", 0.6), ("industry", 0.5), ("education", 0.4),
        ("sales", 0.2), ("status", 0.3),
    ),
    _schema(
        "travel_routes", 2.0, 2,
        ("origin", 0.85), ("location", 0.6), ("duration", 0.5), ("operator", 0.4),
        ("range", 0.4), ("service", 0.3),
    ),
    _schema(
        "library_catalog", 2.0, 2,
        ("isbn", 0.6), ("name", 0.5), ("publisher", 0.6), ("collection", 0.4),
        ("year", 0.4), ("notes", 0.3),
    ),
    _schema(
        "real_estate", 2.0, 2,
        ("address", 0.9), ("area", 0.6), ("county", 0.4), ("capacity", 0.3),
        ("status", 0.4), ("sales", 0.3),
    ),
    _schema(
        "census_persons", 2.0, 2,
        ("person", 0.8), ("sex", 0.6), ("age", 0.6), ("nationality", 0.5),
        ("religion", 0.3), ("education", 0.3), ("origin", 0.25),
    ),
    _schema(
        "award_rankings", 2.0, 2,
        ("ranking", 0.8), ("name", 0.7), ("year", 0.5), ("category", 0.4),
        ("credit", 0.3),
    ),
    _schema(
        "vehicle_catalog", 2.0, 2,
        ("manufacturer", 0.7), ("brand", 0.6), ("type", 0.5), ("capacity", 0.4),
        ("weight", 0.4), ("range", 0.3), ("year", 0.4),
    ),
)


def schema_by_name(name: str, schemas: tuple[TableSchema, ...] = DEFAULT_SCHEMAS) -> TableSchema:
    """Look up a schema by its intent name."""
    for schema in schemas:
        if schema.name == name:
            return schema
    raise KeyError(f"unknown schema {name!r}")


def uncovered_types(schemas: tuple[TableSchema, ...] = DEFAULT_SCHEMAS) -> list[str]:
    """Semantic types not expressible by any schema (should be empty)."""
    covered: set[str] = set()
    for schema in schemas:
        covered.update(schema.semantic_types)
    return [t for t in SEMANTIC_TYPES if t not in covered]
