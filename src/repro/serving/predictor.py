"""Batched inference facade with a column-level feature cache.

The training path is expensive and rare; the serving path must be cheap and
repeatable.  :class:`Predictor` wraps a fitted
:class:`~repro.models.sato.SatoModel` and serves batches of tables through

1. **one** featurization pass — every column of every table in the batch is
   featurized together (cache misses only), instead of per-column Python
   loops per table,
2. **one** column-network forward pass over all columns of the batch, and
3. a cheap per-table structured decode (Viterbi / marginals) on top of the
   shared column-wise scores.

Featurized columns are memoised in an LRU cache keyed on a fingerprint of
the column's content, so repeated traffic over the same columns (the common
case for dashboard-style workloads) skips featurization entirely.  For
topic-aware variants, inferred table-topic vectors are memoised the same
way (keyed on the whole table's content), which removes the single most
expensive per-table serving step — LDA inference — from repeat traffic.
"""

from __future__ import annotations

import hashlib
import threading
import time
import weakref
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.features import sketchstore
from repro.models import MODEL_BACKENDS, SatoModel, TopicAwareModel
from repro.obs import span
from repro.models.batched import split_by_table
from repro.serving.bundle import load_model, model_fingerprint
from repro.serving.shm import load_model_shared
from repro.tables import Column, Table

__all__ = ["column_fingerprint", "LRUCache", "Predictor"]


def column_fingerprint(column: Column) -> str:
    """Content hash of a column's values (order-sensitive, header-blind).

    Values are length-prefixed before hashing so that value boundaries are
    unambiguous (``["ab", "c"]`` and ``["a", "bc"]`` hash differently).
    Headers are excluded: they are never model input.  Delegates to
    :func:`repro.features.sketchstore.values_fingerprint` — the canonical
    column-identity hash shared with the persistent sketch store.

    Examples:
        >>> from repro.tables import Column
        >>> a = column_fingerprint(Column(values=["ab", "c"]))
        >>> a == column_fingerprint(Column(values=["ab", "c"], header="other"))
        True
        >>> a == column_fingerprint(Column(values=["a", "bc"]))
        False
    """
    return sketchstore.values_fingerprint(column.values)


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss accounting.

    Examples:
        >>> import numpy as np
        >>> cache = LRUCache(capacity=2)
        >>> cache.put("a", np.zeros(2)); cache.put("b", np.ones(2))
        >>> cache.get("a") is not None   # refreshes "a", counts a hit
        True
        >>> cache.put("c", np.full(2, 2.0))   # evicts "b" (least recent)
        >>> "b" in cache
        False
        >>> (cache.hits, cache.misses)
        (1, 0)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> np.ndarray | None:
        """Look up a key, refreshing its recency; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert a key, evicting the least recently used entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class Predictor:
    """Serve predictions from a fitted Sato model, batched and cached.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.sato.SatoModel`.
    cache_size:
        Capacity of the column-feature LRU cache and (for topic-aware
        variants) of the table-topic LRU cache.  LDA inference is a pure
        function of a table's values (the Gibbs chain is reseeded per
        call), so cached topic vectors are bit-identical to recomputed
        ones — and topic inference is the most expensive per-table step of
        the serving path, so repeated traffic gains the most here.
    feature_backend:
        Optional featurization backend override (``"loop"`` or
        ``"vectorized"``) applied to the model's featurizer.
    workers:
        Optional process-pool shard count for the vectorized backend.
    model_backend:
        Batch-decode backend: ``"batched"`` (default) decodes every
        CRF-eligible table of a batch in one masked Viterbi pass
        (:mod:`repro.models.batched`); ``"loop"`` keeps the per-table
        decode (the bit-exact parity oracle).  Stored on the predictor, not
        the model, so two predictors over one model can differ.
    sketch_store:
        Optional persistent sketch store — a
        :class:`~repro.features.sketchstore.SketchStore` or a store
        directory path — consulted as an L2 behind the in-memory feature
        and topic caches: columns (and table topics) whose fingerprint +
        config hit the store skip computation even on a cold process.
        Single-process only (the prefork fleet must not share one).
    sketch_sample_rows:
        Bounded-sample dial: featurize cache/store misses from each
        column's first N values only (topic documents are sampled the
        same way).  Trades accuracy for speed on huge columns.

    Columns are treated as immutable snapshots: both the feature cache and
    the per-object fingerprint memo assume a :class:`Column`'s values never
    change after it is first served.

    Examples:
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=6, seed=2)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> predictor = Predictor(SatoModel(config=config).fit(tables))
        >>> labels = predictor.predict_table(tables[0])
        >>> len(labels) == tables[0].n_columns
        True
    """

    def __init__(
        self,
        model: SatoModel,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
        model_backend: str = "batched",
        model_name: str | None = None,
        model_version: str | None = None,
        sketch_store=None,
        sketch_sample_rows: int | None = None,
    ) -> None:
        if model.column_model.network is None:
            raise RuntimeError("Predictor requires a fitted model")
        if model_backend not in MODEL_BACKENDS:
            raise ValueError(
                f"unknown model backend {model_backend!r}; "
                f"expected one of {MODEL_BACKENDS}"
            )
        self.model = model
        self.model_backend = model_backend
        self.column_model = model.column_model
        self._feature_backend = feature_backend
        self._workers = workers
        self.sketch_store, self._owns_sketch_store = sketchstore.open_store(
            sketch_store
        )
        self.sketch_sample_rows = sketch_sample_rows
        self._topic_section: str | None = None
        # A runtime clone shares all fitted state but owns its backend /
        # worker settings and engine, so two predictors over the same model
        # (or the model's own training featurizer) never fight over them.
        self.featurizer = model.column_model.featurizer.runtime_clone(
            backend=feature_backend, workers=workers
        )
        if self.sketch_store is not None or sketch_sample_rows is not None:
            self.featurizer.set_sketch_store(self.sketch_store, sketch_sample_rows)
        self.cache = LRUCache(cache_size)
        self.topic_cache = LRUCache(cache_size)
        self._fingerprints: dict[int, tuple[weakref.ref, str]] = {}
        # Hot-swap state: the lock serializes whole prediction batches
        # against model swaps, so a batch is always served start-to-finish
        # by one model (no mixed batches), and a swap simply waits for the
        # in-flight batch to finish.  The model fingerprint (a hash over
        # every fitted tensor) is computed lazily: registry-tagged
        # predictors never need it unless a swap compares models, and
        # one-shot CLI predictors never need it at all.
        self._swap_lock = threading.RLock()
        self._model_name = model_name
        self._explicit_version = model_version
        self._model_fingerprint: str | None = None
        self._swap_count = 0
        self.last_batch_version: str | None = model_version
        # Instrumentation hooks for online serving: every batched forward
        # pass bumps these, so a server's /metrics endpoint can report
        # model-side totals without wrapping the hot path.
        self._batches = 0
        self._tables = 0
        self._columns = 0
        self._predict_seconds = 0.0
        # Set by from_shared_bundle (and by fleet workers on commit): the
        # shared-memory tensor store backing this predictor's model weights.
        # Owned here so close() unmaps it after the featurizer lets go.
        self.shared_store = None

    @classmethod
    def from_bundle(
        cls,
        path,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
        model_backend: str = "batched",
        model_name: str | None = None,
        model_version: str | None = None,
        sketch_store=None,
        sketch_sample_rows: int | None = None,
    ) -> "Predictor":
        """Build a predictor straight from a saved bundle directory."""
        return cls(
            load_model(path),
            cache_size=cache_size,
            feature_backend=feature_backend,
            workers=workers,
            model_backend=model_backend,
            model_name=model_name,
            model_version=model_version,
            sketch_store=sketch_store,
            sketch_sample_rows=sketch_sample_rows,
        )

    @classmethod
    def from_shared_bundle(
        cls,
        bundle_path,
        store_path,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
        model_backend: str = "batched",
        model_name: str | None = None,
        model_version: str | None = None,
    ) -> "Predictor":
        """Build a predictor whose weights are zero-copy shared-memory views.

        ``store_path`` is a packed tensor store produced by
        :func:`repro.serving.shm.pack_bundle` from the bundle at
        ``bundle_path``.  The model's tensors become read-only views into
        one memory mapping, so N worker processes serving the same bundle
        share a single physical copy of the weights.  The mapping is owned
        by the returned predictor (``shared_store``) and released by
        :meth:`close`.
        """
        model, store = load_model_shared(bundle_path, store_path)
        predictor = cls(
            model,
            cache_size=cache_size,
            feature_backend=feature_backend,
            workers=workers,
            model_backend=model_backend,
            model_name=model_name,
            model_version=model_version,
        )
        predictor.shared_store = store
        return predictor

    @classmethod
    def from_registry(
        cls,
        registry,
        name: str,
        version: str | None = None,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
        model_backend: str = "batched",
        sketch_store=None,
        sketch_sample_rows: int | None = None,
    ) -> "Predictor":
        """Build a predictor from a registry version (default: the promoted).

        ``registry`` is a :class:`~repro.registry.ModelRegistry`; the
        version is integrity-checked before loading.
        """
        model, info = registry.load(name, version)
        return cls(
            model,
            cache_size=cache_size,
            feature_backend=feature_backend,
            workers=workers,
            model_backend=model_backend,
            model_name=info.name,
            model_version=info.version,
            sketch_store=sketch_store,
            sketch_sample_rows=sketch_sample_rows,
        )

    # ------------------------------------------------------------- hot swap

    @property
    def model_name(self) -> str | None:
        """Registered model name (None when serving a loose bundle)."""
        return self._model_name

    @property
    def model_version(self) -> str:
        """Version tag of the serving model (fingerprint prefix if untagged)."""
        if self._explicit_version is not None:
            return self._explicit_version
        return self.fingerprint[:12]

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the serving model (computed on demand)."""
        if self._model_fingerprint is None:
            self._model_fingerprint = model_fingerprint(self.model)
        return self._model_fingerprint

    @property
    def swap_count(self) -> int:
        """How many times :meth:`swap_model` has replaced the model."""
        return self._swap_count

    def swap_model(
        self,
        model: SatoModel,
        model_name: str | None = None,
        model_version: str | None = None,
    ) -> dict:
        """Atomically replace the serving model (zero-downtime hot swap).

        The swap takes the same lock as batch prediction, so the in-flight
        batch (if any) finishes on the old model and every later batch runs
        on the new one — no request is ever served by a half-swapped
        predictor and no batch mixes models.  The column-feature and
        table-topic caches are invalidated **only when the model
        fingerprint actually changes**: re-loading an identical bundle
        keeps the warm caches (both featurization and topic inference are
        pure functions of model state + column content, so an unchanged
        fingerprint guarantees cached entries are still bit-exact).

        Returns a summary dictionary: ``version``, ``fingerprint``,
        ``changed`` (did the model content change), ``cache_cleared`` and
        the cumulative ``swap_count``.
        """
        if model.column_model.network is None:
            raise RuntimeError("swap_model requires a fitted model")
        fingerprint = model_fingerprint(model)
        with self._swap_lock:
            changed = fingerprint != self.fingerprint
            old_featurizer = self.featurizer
            self.model = model
            self.column_model = model.column_model
            self.featurizer = model.column_model.featurizer.runtime_clone(
                backend=self._feature_backend, workers=self._workers
            )
            if self.sketch_store is not None or self.sketch_sample_rows is not None:
                # Re-resolve sections lazily: a new substrate hashes to a
                # new section, so old sketches become misses, not wrong hits.
                self.featurizer.set_sketch_store(
                    self.sketch_store, self.sketch_sample_rows
                )
                self._topic_section = None
            if changed:
                # Feature vectors and topic vectors are functions of model
                # state; a different fingerprint invalidates both.  The
                # column fingerprint memo keys on content only and stays.
                self.cache.clear()
                self.topic_cache.clear()
            if model_name is not None:
                self._model_name = model_name
            self._explicit_version = model_version
            self._model_fingerprint = fingerprint
            self._swap_count += 1
            version = self.model_version
        # Outside the lock: the old featurizer is no longer reachable from
        # the serving path; releasing its worker pool cannot block a batch.
        if old_featurizer is not self.featurizer:
            old_featurizer.close()
        return {
            "version": version,
            "fingerprint": fingerprint,
            "changed": changed,
            "cache_cleared": changed,
            "swap_count": self._swap_count,
        }

    # ------------------------------------------------------------- plumbing

    def _fingerprint(self, column: Column) -> str:
        """Fingerprint a column, memoised per live column object.

        Repeated traffic usually re-sends the same :class:`Column` objects
        (dashboards keep tables alive between refreshes); hashing their
        values once instead of on every call keeps the cache-hit path free
        of per-value work.  Entries are keyed on object identity and evicted
        by a weakref callback when the column is garbage collected.
        """
        key_id = id(column)
        entry = self._fingerprints.get(key_id)
        if entry is not None and entry[0]() is column:
            return entry[1]
        fingerprint = column_fingerprint(column)
        memo = self._fingerprints
        reference = weakref.ref(column, lambda _, k=key_id, m=memo: m.pop(k, None))
        memo[key_id] = (reference, fingerprint)
        return fingerprint

    def _batch_features(self, columns: Sequence[Column]) -> np.ndarray:
        """Featurize a batch of columns, reusing cached feature vectors.

        All cache misses are deduplicated by fingerprint and featurized in a
        single vectorised :meth:`ColumnFeaturizer.transform_columns` call.
        """
        if not columns:
            return np.zeros((0, self.featurizer.n_features), dtype=np.float64)
        keys = [self._fingerprint(column) for column in columns]
        rows: list[np.ndarray | None] = [self.cache.get(key) for key in keys]
        missing: OrderedDict[str, Column] = OrderedDict()
        for key, row, column in zip(keys, rows, columns):
            if row is None and key not in missing:
                missing[key] = column
        if missing:
            computed = self.featurizer.transform_columns(list(missing.values()))
            fresh = dict(zip(missing, computed))
            for key, vector in fresh.items():
                # Copy: a row view would pin the whole batch matrix in the
                # cache, defeating eviction for large batches.
                self.cache.put(key, vector.copy())
            rows = [fresh[key] if row is None else row for key, row in zip(keys, rows)]
        return np.stack(rows)

    def _table_fingerprint(self, table: Table) -> str:
        """Content hash of a whole table, composed from column fingerprints.

        Reuses the per-column memo, so for repeated traffic this is a few
        dict hits and one digest over 16-byte column hashes — no value is
        re-read.
        """
        digest = hashlib.blake2b(digest_size=16)
        for column in table.columns:
            digest.update(bytes.fromhex(self._fingerprint(column)))
        return digest.hexdigest()

    def _batch_topics(self, tables: Sequence[Table]) -> np.ndarray | None:
        """Per-column topic matrix for the batch (None for topic-free models).

        Topic vectors are memoised in their own LRU cache keyed on table
        content: LDA inference reseeds its Gibbs chain per call, so the
        cached vector is bit-identical to a recomputation.
        """
        if not isinstance(self.column_model, TopicAwareModel):
            return None
        store = self.sketch_store
        sample = self.sketch_sample_rows
        intent = self.column_model.intent_estimator
        rows: list[np.ndarray] = []
        for table in tables:
            if not table.columns:
                continue
            key = self._table_fingerprint(table)
            vector = self.topic_cache.get(key)
            if vector is None and store is not None:
                if self._topic_section is None:
                    self._topic_section = store.section(
                        sketchstore.topic_section_config(
                            intent, sample_rows=sample
                        )
                    )
                vector = sketchstore.topic_vector_from_sketch(
                    store.get(self._topic_section, key), intent.n_topics
                )
                if vector is not None:
                    self.topic_cache.put(key, vector)
            if vector is None:
                source = table
                if sample is not None:
                    source = sketchstore.sampled_table(table, sample)
                vector = intent.topic_vector(source)
                self.topic_cache.put(key, vector)
                if store is not None:
                    store.put(self._topic_section, key, {"topic": vector.tolist()})
            rows.append(np.tile(vector, (table.n_columns, 1)))
        if not rows:
            return np.zeros((0, self.column_model.n_topics))
        return np.concatenate(rows, axis=0)

    def _columnwise_proba(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Column-wise class scores per table, from one batched forward pass."""
        columns = [column for table in tables for column in table.columns]
        n_classes = self.column_model.n_classes
        self._batches += 1
        self._tables += len(tables)
        self._columns += len(columns)
        if not columns:
            return [np.zeros((0, n_classes)) for _ in tables]
        started = time.perf_counter()
        # The three sequential pipeline stages of a batch: cached/vectorised
        # featurization, table-topic inference, column-network forward.
        # Stage spans land in the trace of whichever request anchors the
        # batch (see MicroBatcher._dispatch / the fleet worker runtime).
        with span("featurize", n_columns=len(columns)):
            features = self._batch_features(columns)
        with span("topic.infer", n_tables=len(tables)):
            topics = self._batch_topics(tables)
        with span("forward", n_columns=len(columns)):
            probabilities = self.column_model.predict_proba_matrix(features, topics)
        self._predict_seconds += time.perf_counter() - started
        return split_by_table(probabilities, tables)

    # ------------------------------------------------------------- serving

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Structured per-column type distributions for a batch of tables."""
        tables = list(tables)
        with self._swap_lock:
            self.last_batch_version = self.model_version
            return [
                self.model.marginals_from_proba(proba)
                for proba in self._columnwise_proba(tables)
            ]

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Predicted semantic types for every column of every table.

        Under the default ``batched`` model backend the structured decode
        runs once for the whole batch (one masked Viterbi recurrence over a
        padded unary tensor) instead of once per table; ``loop`` keeps the
        per-table decode as the parity oracle.

        The whole batch — featurization, forward pass, structured decode —
        runs under the swap lock, so a concurrent :meth:`swap_model` can
        only take effect between batches, never inside one.
        ``last_batch_version`` records which model version served the most
        recent batch (read by the micro-batch scheduler to stamp responses).
        """
        tables = list(tables)
        with self._swap_lock:
            self.last_batch_version = self.model_version
            probabilities = self._columnwise_proba(tables)
            with span("decode", n_tables=len(tables)):
                if self.model_backend == "batched":
                    return self.model.labels_from_proba_batch(probabilities)
                return [self.model.labels_from_proba(proba) for proba in probabilities]

    def predict_proba_table(self, table: Table) -> np.ndarray:
        """Structured per-column type distributions for one table."""
        return self.predict_proba_tables([table])[0]

    def predict_table(self, table: Table) -> list[str]:
        """Predicted semantic types for one table."""
        return self.predict_tables([table])[0]

    def close(self) -> None:
        """Release featurization resources (worker pool, engine memos).

        The predictor stays usable; the engine rebuilds lazily on the next
        prediction.  Call this when tearing down a server that used
        ``workers > 1`` so the shard processes exit promptly.  A predictor
        built from a shared tensor store also unmaps the store — after
        that, the model's weight views are gone and the predictor must not
        serve again.
        """
        self.featurizer.close()
        if self._owns_sketch_store and self.sketch_store is not None:
            self.sketch_store.close()
        if self.shared_store is not None:
            store, self.shared_store = self.shared_store, None
            store.close()

    def cache_info(self) -> dict:
        """Cache statistics of the serving hot path.

        Returns a dictionary with the column-feature LRU cache's current
        ``size`` and ``capacity``, its cumulative ``hits`` and ``misses``
        (one lookup per column served), and the number of live entries in
        the per-object ``fingerprints`` memo.  First-contact traffic shows
        up as misses; repeated traffic over the same columns shows up as
        hits — the ratio is the cache hit rate a server's ``/metrics``
        endpoint reports.

        Examples:
            >>> from repro.corpus import CorpusConfig, CorpusGenerator
            >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
            >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=3)).generate()
            >>> config = SatoConfig(use_topic=False, use_struct=False,
            ...                     training=TrainingConfig(n_epochs=1,
            ...                                             subnet_dim=4,
            ...                                             hidden_dim=8))
            >>> predictor = Predictor(SatoModel(config=config).fit(tables))
            >>> _ = predictor.predict_table(tables[0])   # cold: misses only
            >>> first = predictor.cache_info()
            >>> first["misses"] == tables[0].n_columns and first["hits"] == 0
            True
            >>> _ = predictor.predict_table(tables[0])   # warm: hits only
            >>> second = predictor.cache_info()
            >>> second["hits"] == tables[0].n_columns
            True
            >>> second["misses"] == first["misses"]
            True
        """
        info = {
            "size": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "topic_size": len(self.topic_cache),
            "topic_hits": self.topic_cache.hits,
            "topic_misses": self.topic_cache.misses,
            "fingerprints": len(self._fingerprints),
        }
        if self.sketch_store is not None:
            info["sketch_store"] = self.sketch_store.stats()
        return info

    def predict_info(self) -> dict:
        """Cumulative model-side serving counters (instrumentation hook).

        Tracks every batched forward pass served by this predictor:
        ``batches`` (number of ``predict*`` calls), ``tables`` and
        ``columns`` (work volume), ``predict_seconds`` (time spent in
        featurization + the column-network forward, excluding structured
        decode), and the active ``model_backend``.  The online server
        surfaces this under the ``predictor`` key of ``GET /metrics``.
        """
        return {
            "batches": self._batches,
            "tables": self._tables,
            "columns": self._columns,
            "predict_seconds": self._predict_seconds,
            "model_backend": self.model_backend,
            "model_name": self._model_name,
            "model_version": self.model_version,
            "model_fingerprint": self.fingerprint,
            "swap_count": self._swap_count,
        }
