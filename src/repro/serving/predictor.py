"""Batched inference facade with a column-level feature cache.

The training path is expensive and rare; the serving path must be cheap and
repeatable.  :class:`Predictor` wraps a fitted
:class:`~repro.models.sato.SatoModel` and serves batches of tables through

1. **one** featurization pass — every column of every table in the batch is
   featurized together (cache misses only), instead of per-column Python
   loops per table,
2. **one** column-network forward pass over all columns of the batch, and
3. a cheap per-table structured decode (Viterbi / marginals) on top of the
   shared column-wise scores.

Featurized columns are memoised in an LRU cache keyed on a fingerprint of
the column's content, so repeated traffic over the same columns (the common
case for dashboard-style workloads) skips featurization entirely.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.models import SatoModel, TopicAwareModel
from repro.serving.bundle import load_model
from repro.tables import Column, Table

__all__ = ["column_fingerprint", "LRUCache", "Predictor"]


def column_fingerprint(column: Column) -> str:
    """Content hash of a column's values (order-sensitive, header-blind).

    Values are length-prefixed before hashing so that value boundaries are
    unambiguous (``["ab", "c"]`` and ``["a", "bc"]`` hash differently).
    Headers are excluded: they are never model input.
    """
    digest = hashlib.blake2b(digest_size=16)
    for value in column.values:
        encoded = value.encode("utf-8")
        digest.update(len(encoded).to_bytes(4, "little"))
        digest.update(encoded)
    return digest.hexdigest()


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> np.ndarray | None:
        """Look up a key, refreshing its recency; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert a key, evicting the least recently used entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class Predictor:
    """Serve predictions from a fitted Sato model, batched and cached."""

    def __init__(self, model: SatoModel, cache_size: int = 4096) -> None:
        if model.column_model.network is None:
            raise RuntimeError("Predictor requires a fitted model")
        self.model = model
        self.column_model = model.column_model
        self.featurizer = model.column_model.featurizer
        self.cache = LRUCache(cache_size)

    @classmethod
    def from_bundle(cls, path, cache_size: int = 4096) -> "Predictor":
        """Build a predictor straight from a saved bundle directory."""
        return cls(load_model(path), cache_size=cache_size)

    # ------------------------------------------------------------- plumbing

    def _batch_features(self, columns: Sequence[Column]) -> np.ndarray:
        """Featurize a batch of columns, reusing cached feature vectors.

        All cache misses are deduplicated by fingerprint and featurized in a
        single vectorised :meth:`ColumnFeaturizer.transform_columns` call.
        """
        if not columns:
            return np.zeros((0, self.featurizer.n_features), dtype=np.float64)
        keys = [column_fingerprint(column) for column in columns]
        rows: list[np.ndarray | None] = [self.cache.get(key) for key in keys]
        missing: OrderedDict[str, Column] = OrderedDict()
        for key, row, column in zip(keys, rows, columns):
            if row is None and key not in missing:
                missing[key] = column
        if missing:
            computed = self.featurizer.transform_columns(list(missing.values()))
            fresh = dict(zip(missing, computed))
            for key, vector in fresh.items():
                # Copy: a row view would pin the whole batch matrix in the
                # cache, defeating eviction for large batches.
                self.cache.put(key, vector.copy())
            rows = [fresh[key] if row is None else row for key, row in zip(keys, rows)]
        return np.stack(rows)

    def _batch_topics(self, tables: Sequence[Table]) -> np.ndarray | None:
        """Per-column topic matrix for the batch (None for topic-free models)."""
        if not isinstance(self.column_model, TopicAwareModel):
            return None
        rows: list[np.ndarray] = []
        for table in tables:
            if not table.columns:
                continue
            vector = self.column_model.intent_estimator.topic_vector(table)
            rows.append(np.tile(vector, (table.n_columns, 1)))
        if not rows:
            return np.zeros((0, self.column_model.n_topics))
        return np.concatenate(rows, axis=0)

    def _columnwise_proba(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Column-wise class scores per table, from one batched forward pass."""
        columns = [column for table in tables for column in table.columns]
        n_classes = self.column_model.n_classes
        if not columns:
            return [np.zeros((0, n_classes)) for _ in tables]
        features = self._batch_features(columns)
        topics = self._batch_topics(tables)
        probabilities = self.column_model.predict_proba_matrix(features, topics)
        split: list[np.ndarray] = []
        offset = 0
        for table in tables:
            split.append(probabilities[offset: offset + table.n_columns])
            offset += table.n_columns
        return split

    # ------------------------------------------------------------- serving

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Structured per-column type distributions for a batch of tables."""
        tables = list(tables)
        return [
            self.model.marginals_from_proba(proba)
            for proba in self._columnwise_proba(tables)
        ]

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Predicted semantic types for every column of every table."""
        tables = list(tables)
        return [
            self.model.labels_from_proba(proba)
            for proba in self._columnwise_proba(tables)
        ]

    def predict_proba_table(self, table: Table) -> np.ndarray:
        """Structured per-column type distributions for one table."""
        return self.predict_proba_tables([table])[0]

    def predict_table(self, table: Table) -> list[str]:
        """Predicted semantic types for one table."""
        return self.predict_tables([table])[0]

    def cache_info(self) -> dict:
        """Cache statistics of the serving hot path."""
        return {
            "size": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
        }
