"""Batched inference facade with a column-level feature cache.

The training path is expensive and rare; the serving path must be cheap and
repeatable.  :class:`Predictor` wraps a fitted
:class:`~repro.models.sato.SatoModel` and serves batches of tables through

1. **one** featurization pass — every column of every table in the batch is
   featurized together (cache misses only), instead of per-column Python
   loops per table,
2. **one** column-network forward pass over all columns of the batch, and
3. a cheap per-table structured decode (Viterbi / marginals) on top of the
   shared column-wise scores.

Featurized columns are memoised in an LRU cache keyed on a fingerprint of
the column's content, so repeated traffic over the same columns (the common
case for dashboard-style workloads) skips featurization entirely.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.models import SatoModel, TopicAwareModel
from repro.serving.bundle import load_model
from repro.tables import Column, Table

__all__ = ["column_fingerprint", "LRUCache", "Predictor"]


def column_fingerprint(column: Column) -> str:
    """Content hash of a column's values (order-sensitive, header-blind).

    Values are length-prefixed before hashing so that value boundaries are
    unambiguous (``["ab", "c"]`` and ``["a", "bc"]`` hash differently).
    Headers are excluded: they are never model input.

    Examples:
        >>> from repro.tables import Column
        >>> a = column_fingerprint(Column(values=["ab", "c"]))
        >>> a == column_fingerprint(Column(values=["ab", "c"], header="other"))
        True
        >>> a == column_fingerprint(Column(values=["a", "bc"]))
        False
    """
    digest = hashlib.blake2b(digest_size=16)
    for value in column.values:
        encoded = value.encode("utf-8")
        digest.update(len(encoded).to_bytes(4, "little"))
        digest.update(encoded)
    return digest.hexdigest()


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss accounting.

    Examples:
        >>> import numpy as np
        >>> cache = LRUCache(capacity=2)
        >>> cache.put("a", np.zeros(2)); cache.put("b", np.ones(2))
        >>> cache.get("a") is not None   # refreshes "a", counts a hit
        True
        >>> cache.put("c", np.full(2, 2.0))   # evicts "b" (least recent)
        >>> "b" in cache
        False
        >>> (cache.hits, cache.misses)
        (1, 0)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> np.ndarray | None:
        """Look up a key, refreshing its recency; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert a key, evicting the least recently used entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class Predictor:
    """Serve predictions from a fitted Sato model, batched and cached.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.sato.SatoModel`.
    cache_size:
        Capacity of the column-feature LRU cache.
    feature_backend:
        Optional featurization backend override (``"loop"`` or
        ``"vectorized"``) applied to the model's featurizer.
    workers:
        Optional process-pool shard count for the vectorized backend.

    Columns are treated as immutable snapshots: both the feature cache and
    the per-object fingerprint memo assume a :class:`Column`'s values never
    change after it is first served.

    Examples:
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=6, seed=2)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> predictor = Predictor(SatoModel(config=config).fit(tables))
        >>> labels = predictor.predict_table(tables[0])
        >>> len(labels) == tables[0].n_columns
        True
    """

    def __init__(
        self,
        model: SatoModel,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        if model.column_model.network is None:
            raise RuntimeError("Predictor requires a fitted model")
        self.model = model
        self.column_model = model.column_model
        # A runtime clone shares all fitted state but owns its backend /
        # worker settings and engine, so two predictors over the same model
        # (or the model's own training featurizer) never fight over them.
        self.featurizer = model.column_model.featurizer.runtime_clone(
            backend=feature_backend, workers=workers
        )
        self.cache = LRUCache(cache_size)
        self._fingerprints: dict[int, tuple[weakref.ref, str]] = {}

    @classmethod
    def from_bundle(
        cls,
        path,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        workers: int | None = None,
    ) -> "Predictor":
        """Build a predictor straight from a saved bundle directory."""
        return cls(
            load_model(path),
            cache_size=cache_size,
            feature_backend=feature_backend,
            workers=workers,
        )

    # ------------------------------------------------------------- plumbing

    def _fingerprint(self, column: Column) -> str:
        """Fingerprint a column, memoised per live column object.

        Repeated traffic usually re-sends the same :class:`Column` objects
        (dashboards keep tables alive between refreshes); hashing their
        values once instead of on every call keeps the cache-hit path free
        of per-value work.  Entries are keyed on object identity and evicted
        by a weakref callback when the column is garbage collected.
        """
        key_id = id(column)
        entry = self._fingerprints.get(key_id)
        if entry is not None and entry[0]() is column:
            return entry[1]
        fingerprint = column_fingerprint(column)
        memo = self._fingerprints
        reference = weakref.ref(column, lambda _, k=key_id, m=memo: m.pop(k, None))
        memo[key_id] = (reference, fingerprint)
        return fingerprint

    def _batch_features(self, columns: Sequence[Column]) -> np.ndarray:
        """Featurize a batch of columns, reusing cached feature vectors.

        All cache misses are deduplicated by fingerprint and featurized in a
        single vectorised :meth:`ColumnFeaturizer.transform_columns` call.
        """
        if not columns:
            return np.zeros((0, self.featurizer.n_features), dtype=np.float64)
        keys = [self._fingerprint(column) for column in columns]
        rows: list[np.ndarray | None] = [self.cache.get(key) for key in keys]
        missing: OrderedDict[str, Column] = OrderedDict()
        for key, row, column in zip(keys, rows, columns):
            if row is None and key not in missing:
                missing[key] = column
        if missing:
            computed = self.featurizer.transform_columns(list(missing.values()))
            fresh = dict(zip(missing, computed))
            for key, vector in fresh.items():
                # Copy: a row view would pin the whole batch matrix in the
                # cache, defeating eviction for large batches.
                self.cache.put(key, vector.copy())
            rows = [fresh[key] if row is None else row for key, row in zip(keys, rows)]
        return np.stack(rows)

    def _batch_topics(self, tables: Sequence[Table]) -> np.ndarray | None:
        """Per-column topic matrix for the batch (None for topic-free models)."""
        if not isinstance(self.column_model, TopicAwareModel):
            return None
        rows: list[np.ndarray] = []
        for table in tables:
            if not table.columns:
                continue
            vector = self.column_model.intent_estimator.topic_vector(table)
            rows.append(np.tile(vector, (table.n_columns, 1)))
        if not rows:
            return np.zeros((0, self.column_model.n_topics))
        return np.concatenate(rows, axis=0)

    def _columnwise_proba(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Column-wise class scores per table, from one batched forward pass."""
        columns = [column for table in tables for column in table.columns]
        n_classes = self.column_model.n_classes
        if not columns:
            return [np.zeros((0, n_classes)) for _ in tables]
        features = self._batch_features(columns)
        topics = self._batch_topics(tables)
        probabilities = self.column_model.predict_proba_matrix(features, topics)
        split: list[np.ndarray] = []
        offset = 0
        for table in tables:
            split.append(probabilities[offset: offset + table.n_columns])
            offset += table.n_columns
        return split

    # ------------------------------------------------------------- serving

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Structured per-column type distributions for a batch of tables."""
        tables = list(tables)
        return [
            self.model.marginals_from_proba(proba)
            for proba in self._columnwise_proba(tables)
        ]

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Predicted semantic types for every column of every table."""
        tables = list(tables)
        return [
            self.model.labels_from_proba(proba)
            for proba in self._columnwise_proba(tables)
        ]

    def predict_proba_table(self, table: Table) -> np.ndarray:
        """Structured per-column type distributions for one table."""
        return self.predict_proba_tables([table])[0]

    def predict_table(self, table: Table) -> list[str]:
        """Predicted semantic types for one table."""
        return self.predict_tables([table])[0]

    def close(self) -> None:
        """Release featurization resources (worker pool, engine memos).

        The predictor stays usable; the engine rebuilds lazily on the next
        prediction.  Call this when tearing down a server that used
        ``workers > 1`` so the shard processes exit promptly.
        """
        self.featurizer.close()

    def cache_info(self) -> dict:
        """Cache statistics of the serving hot path."""
        return {
            "size": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "fingerprints": len(self._fingerprints),
        }
