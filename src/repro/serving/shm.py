"""Shared-memory tensor store: one copy of the weights for a worker fleet.

A multi-process serving fleet must not hold N private copies of the model:
the fitted tensors (word vectors, LDA count matrices, network weights) are
by far the largest state, and they are strictly read-only at inference
time.  :class:`SharedTensorStore` packs every bundle tensor into a single
flat binary file with a JSON sidecar describing the layout; each worker
maps the file with ``mmap.ACCESS_READ`` and wraps zero-copy *non-writeable*
NumPy views around the mapping.  The OS page cache then backs all workers
with one physical copy of the weights, and any accidental in-place write
raises immediately instead of silently corrupting the whole fleet.

Why a file-backed mmap rather than ``multiprocessing.shared_memory``: on
Python 3.10–3.12 a child process that attaches a ``SharedMemory`` segment
registers it with its resource tracker and unlinks it when the child exits,
destroying the segment for every sibling (bpo-39959; the ``track=False``
escape hatch only exists from 3.13).  A regular file under ``/dev/shm``
(tmpfs, falling back to the system temp dir) has identical page-sharing
semantics with none of the lifetime pitfalls — POSIX keeps existing
mappings alive after the file is unlinked, so a rolling promote can delete
the old store while straggler workers finish their last batch on it.
"""

from __future__ import annotations

import json
import mmap
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "SHM_FORMAT",
    "LAYOUT_SUFFIX",
    "ShmFormatError",
    "SharedTensorStore",
    "default_store_dir",
    "pack_bundle",
    "load_model_shared",
    "remove_store",
]

#: Format tag written into (and checked against) the layout sidecar.
SHM_FORMAT = "repro-shm-tensors-v1"

#: The layout sidecar lives next to the packed file: ``<store>.layout.json``.
LAYOUT_SUFFIX = ".layout.json"

#: Tensor offsets are rounded up to this boundary (cache-line friendly, and
#: safely above any NumPy dtype's alignment requirement).
ALIGNMENT = 64


class ShmFormatError(RuntimeError):
    """Raised when a packed tensor store cannot be (safely) opened."""


def default_store_dir() -> Path:
    """Preferred directory for packed stores: tmpfs when available.

    ``/dev/shm`` keeps the pages in RAM outright; on platforms without it
    the system temp dir still shares pages through the page cache.
    """
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return shm
    return Path(tempfile.gettempdir())


def _layout_path(path: Path) -> Path:
    return Path(str(path) + LAYOUT_SUFFIX)


class SharedTensorStore:
    """A packed, mmap-shareable snapshot of a model's tensor state.

    One process (the fleet parent) packs the bundle's tensors once with
    :meth:`pack`; any number of processes then :meth:`open` the same file
    and serve from zero-copy read-only views of the shared pages.

    Examples:
        >>> import numpy as np, tempfile
        >>> state = {"w": np.arange(6, dtype=np.float64).reshape(2, 3),
        ...          "tokens": np.array(["alpha", "b"], dtype=np.str_)}
        >>> with tempfile.TemporaryDirectory() as root:
        ...     path = SharedTensorStore.pack(state, root + "/tensors.bin")
        ...     store = SharedTensorStore.open(path)
        ...     views = store.state_dict()
        ...     same = all(np.array_equal(views[k], state[k]) for k in state)
        ...     read_only = not views["w"].flags.writeable
        ...     store.close()
        >>> (same, read_only)
        (True, True)
    """

    def __init__(
        self,
        path: Path,
        arrays: dict[str, np.ndarray],
        mapping: mmap.mmap | None,
    ) -> None:
        self.path = path
        self._arrays = arrays
        self._mapping = mapping

    # ------------------------------------------------------------------ pack

    @staticmethod
    def pack(state: dict[str, np.ndarray], path: str | Path) -> Path:
        """Write a tensor dict as one flat aligned binary file + layout.

        Keys are laid out in sorted order at :data:`ALIGNMENT`-byte offsets;
        dtypes (including fixed-width unicode) round-trip exactly, so the
        opened views are bit-identical to the packed arrays.
        """
        path = Path(path)
        layout: dict[str, dict] = {}
        chunks: list[tuple[int, np.ndarray]] = []
        offset = 0
        for key in sorted(state):
            tensor = np.ascontiguousarray(state[key])
            offset = -(-offset // ALIGNMENT) * ALIGNMENT
            layout[key] = {
                "offset": offset,
                "dtype": tensor.dtype.str,
                "shape": list(tensor.shape),
            }
            chunks.append((offset, tensor))
            offset += tensor.nbytes
        total = max(offset, 1)  # an empty file cannot be mmapped
        with path.open("wb") as handle:
            handle.truncate(total)
            for start, tensor in chunks:
                handle.seek(start)
                handle.write(tensor.tobytes())
        meta = {"format": SHM_FORMAT, "total_bytes": total, "tensors": layout}
        _layout_path(path).write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    # ------------------------------------------------------------------ open

    @classmethod
    def open(cls, path: str | Path) -> "SharedTensorStore":
        """Map a packed store read-only and wrap zero-copy tensor views."""
        path = Path(path)
        layout_path = _layout_path(path)
        if not path.is_file() or not layout_path.is_file():
            raise ShmFormatError(f"no packed tensor store at {path}")
        try:
            meta = json.loads(layout_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ShmFormatError(f"corrupt layout {layout_path}: {error}") from error
        if meta.get("format") != SHM_FORMAT:
            raise ShmFormatError(
                f"unsupported store format {meta.get('format')!r} "
                f"(expected {SHM_FORMAT})"
            )
        with path.open("rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < meta.get("total_bytes", 0):
                raise ShmFormatError(
                    f"store {path} is truncated "
                    f"({size} < {meta['total_bytes']} bytes)"
                )
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        arrays: dict[str, np.ndarray] = {}
        for key, spec in meta["tensors"].items():
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(n) for n in spec["shape"])
            count = 1
            for n in shape:
                count *= n
            # A read-only mmap buffer makes the view non-writeable — the
            # enforcement half of "one shared copy, nobody mutates it".
            arrays[key] = np.frombuffer(
                mapping, dtype=dtype, count=count, offset=int(spec["offset"])
            ).reshape(shape)
        return cls(path, arrays, mapping)

    # ----------------------------------------------------------------- views

    def state_dict(self) -> dict[str, np.ndarray]:
        """Zero-copy read-only views, keyed like the bundle's ``.npz`` state.

        The views alias the mapping: they stay valid until :meth:`close`
        (and, through NumPy's buffer references, as long as any view is
        still alive).
        """
        return dict(self._arrays)

    @property
    def nbytes(self) -> int:
        """Total tensor payload currently exposed by this store."""
        return sum(array.nbytes for array in self._arrays.values())

    def close(self) -> None:
        """Release this process's mapping (best effort).

        If views are still referenced elsewhere (e.g. by a model that is
        mid-teardown), the mmap cannot be closed yet; the pages are then
        released when the last view is garbage collected.
        """
        self._arrays = {}
        if self._mapping is not None:
            try:
                self._mapping.close()
            except BufferError:
                pass  # exported views keep the mapping alive until GC'd
            self._mapping = None


def remove_store(path: str | Path) -> None:
    """Delete a packed store and its layout sidecar (missing files are fine).

    Safe to call while other processes still map the file: POSIX keeps
    their mappings alive until they close.
    """
    Path(path).unlink(missing_ok=True)
    _layout_path(Path(path)).unlink(missing_ok=True)


def pack_bundle(bundle_path: str | Path, store_path: str | Path) -> Path:
    """Pack a bundle directory's ``.npz`` tensors into a shared store file."""
    from repro.serving.bundle import read_state

    return SharedTensorStore.pack(read_state(bundle_path), store_path)


def load_model_shared(bundle_path: str | Path, store_path: str | Path):
    """Load a bundle's model with its tensors backed by a shared store.

    Returns ``(model, store)``: the model's components hold read-only views
    into the store's mapping (the loaders are zero-copy), so N processes
    opening the same store serve from one physical copy of the weights.
    The caller owns the store and must keep it open for the model's
    lifetime.
    """
    from repro.serving.bundle import load_model_from_state

    store = SharedTensorStore.open(store_path)
    try:
        model = load_model_from_state(bundle_path, store.state_dict())
    except Exception:
        store.close()
        raise
    return model, store
