"""Model persistence and batched serving (train once, serve many).

The training path (``SatoModel.fit``) is expensive; the serving path must
be cheap, repeatable and separately deployable.  This package provides the
three pieces that make the split possible:

* :class:`~repro.serving.component.StatefulComponent` — the structural
  protocol (``config_dict`` / ``state_dict`` / ``load_state_dict``) every
  stateful pipeline layer implements,
* :func:`~repro.serving.bundle.save_model` /
  :func:`~repro.serving.bundle.load_model` — the on-disk artifact bundle
  (JSON manifest + one ``.npz`` of tensors) round-tripping a fitted model
  bit-exactly,
* :class:`~repro.serving.predictor.Predictor` — the batched inference
  facade with an LRU column-feature cache,
* :class:`~repro.serving.scheduler.MicroBatcher` — the online micro-batching
  request scheduler (admission control, graceful drain, latency accounting),
* :class:`~repro.serving.server.ServingServer` — the stdlib HTTP front end
  (``/v1/predict``, ``/v1/predict_batch``, ``/healthz``, ``/metrics``),
* :class:`~repro.serving.fleet.ServingFleet` — the prefork multi-worker
  serving pool: one shared-memory copy of the weights
  (:mod:`repro.serving.shm`), fingerprint-affinity routing
  (:class:`~repro.serving.fleet.HashRing`), fleet-wide two-phase model
  promotion and crash-restart supervision.
"""

from repro.serving.component import StatefulComponent
from repro.serving.bundle import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    TENSORS_NAME,
    BundleFormatError,
    load_model,
    load_model_from_state,
    model_fingerprint,
    read_state,
    save_model,
)
from repro.serving.fleet import (
    FleetError,
    HashRing,
    ServingFleet,
    WorkerSpec,
    table_routing_key,
)
from repro.serving.shm import (
    SharedTensorStore,
    ShmFormatError,
    load_model_shared,
    pack_bundle,
    remove_store,
)
from repro.serving.predictor import LRUCache, Predictor, column_fingerprint
from repro.serving.scheduler import (
    DrainingError,
    MicroBatcher,
    QueueFullError,
    ServingMetrics,
)
from repro.serving.server import (
    MalformedRequest,
    ServerHandle,
    ServingServer,
    serve_in_thread,
)

__all__ = [
    "StatefulComponent",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "TENSORS_NAME",
    "BundleFormatError",
    "save_model",
    "load_model",
    "load_model_from_state",
    "read_state",
    "model_fingerprint",
    "SharedTensorStore",
    "ShmFormatError",
    "load_model_shared",
    "pack_bundle",
    "remove_store",
    "FleetError",
    "HashRing",
    "ServingFleet",
    "WorkerSpec",
    "table_routing_key",
    "LRUCache",
    "Predictor",
    "column_fingerprint",
    "DrainingError",
    "MicroBatcher",
    "QueueFullError",
    "ServingMetrics",
    "MalformedRequest",
    "ServerHandle",
    "ServingServer",
    "serve_in_thread",
]
