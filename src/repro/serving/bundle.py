"""Artifact bundle persistence: train once, serve many.

A *bundle* is a directory holding everything needed to serve a fitted
:class:`~repro.models.sato.SatoModel` without retraining:

``manifest.json``
    Format version, model variant, the full nested ``config_dict`` tree,
    the semantic type vocabulary the model was trained against, and the
    feature-group slices of the featurizer.
``tensors.npz``
    Every fitted tensor of every component, under the dotted keys produced
    by the model's flattened ``state_dict``.

``save_model`` / ``load_model`` round-trip a model bit-exactly: tensors are
stored as float64 ``.npy`` entries inside the archive, and all inference
randomness (LDA Gibbs chains) is seeded from the persisted configuration,
so a reloaded model reproduces the in-memory model's predictions exactly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.features import ColumnFeaturizer
from repro.models import (
    SatoConfig,
    SatoModel,
    SherlockModel,
    TopicAwareModel,
    TrainingConfig,
)
from repro.topic import LatentDirichletAllocation, TableIntentEstimator
from repro.types import SEMANTIC_TYPES

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "TENSORS_NAME",
    "BundleFormatError",
    "save_model",
    "read_state",
    "load_model_from_state",
    "load_model",
    "model_fingerprint",
]

#: Version of the on-disk bundle layout.  Bump on incompatible changes.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
TENSORS_NAME = "tensors.npz"


class BundleFormatError(RuntimeError):
    """Raised when a bundle directory cannot be (safely) loaded.

    Examples:
        >>> import tempfile
        >>> from repro.serving import BundleFormatError, load_model
        >>> with tempfile.TemporaryDirectory() as empty:
        ...     try:
        ...         load_model(empty)
        ...     except BundleFormatError:
        ...         print("not a bundle")
        not a bundle
    """


def save_model(model: SatoModel, path: str | Path) -> Path:
    """Persist a fitted Sato model as a bundle directory.

    Returns the bundle path.  Raises ``RuntimeError`` when the model (or any
    of its components) is not fitted.

    Examples:
        >>> import tempfile
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=1)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> with tempfile.TemporaryDirectory() as root:
        ...     bundle = save_model(model, root + "/bundle")
        ...     sorted(p.name for p in bundle.iterdir())
        ['manifest.json', 'tensors.npz']
    """
    path = Path(path)
    state = model.state_dict()
    path.mkdir(parents=True, exist_ok=True)
    featurizer = model.column_model.featurizer
    manifest = {
        "format_version": FORMAT_VERSION,
        "model": model.config_dict(),
        "semantic_types": list(SEMANTIC_TYPES),
        "feature_groups": [
            {"name": g.name, "start": g.start, "stop": g.stop}
            for g in featurizer.groups
        ],
        "tensor_keys": sorted(state),
    }
    with (path / MANIFEST_NAME).open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    np.savez(path / TENSORS_NAME, **state)
    return path


def model_fingerprint(model: SatoModel) -> str:
    """Content hash of a fitted model (configuration + every tensor).

    Two models fingerprint identically exactly when they are functionally
    the same: same nested ``config_dict`` tree and bit-identical fitted
    state.  The serving layer uses this to decide whether a hot swap
    actually changed the model (and therefore whether feature/topic caches
    must be invalidated), and the registry records it per version so an
    on-disk bundle can be integrity-checked against its manifest.

    Examples:
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=1)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> fp = model_fingerprint(model)
        >>> len(fp) == 32 and fp == model_fingerprint(model)
        True
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(model.config_dict(), sort_keys=True).encode("utf-8"))
    state = model.state_dict()
    for key in sorted(state):
        tensor = np.ascontiguousarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(tensor.dtype).encode("ascii"))
        digest.update(repr(tensor.shape).encode("ascii"))
        digest.update(tensor.tobytes())
    return digest.hexdigest()


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise BundleFormatError(f"no {MANIFEST_NAME} in {path}")
    try:
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as error:
        raise BundleFormatError(
            f"corrupt {MANIFEST_NAME} in {path}: {error}"
        ) from error
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise BundleFormatError(
            f"bundle format version {version!r} is not supported "
            f"(expected {FORMAT_VERSION})"
        )
    if manifest.get("semantic_types") != list(SEMANTIC_TYPES):
        raise BundleFormatError(
            "bundle was trained against a different semantic type vocabulary"
        )
    return manifest


def _build_column_model(column_config: dict) -> SherlockModel:
    """Rebuild an unfitted column model from its ``config_dict``."""
    training = TrainingConfig(**column_config["training"])
    featurizer = ColumnFeaturizer(**column_config["featurizer"])
    model_type = column_config.get("type")
    if model_type == "TopicAwareModel":
        intent_config = column_config["intent"]
        estimator = TableIntentEstimator(
            n_topics=intent_config["n_topics"],
            max_tokens_per_table=intent_config["max_tokens_per_table"],
        )
        estimator.lda = LatentDirichletAllocation(**intent_config["lda"])
        return TopicAwareModel(
            featurizer=featurizer,
            intent_estimator=estimator,
            config=training,
            n_classes=column_config["n_classes"],
            compress_topic=column_config["compress_topic"],
        )
    if model_type == "SherlockModel":
        return SherlockModel(
            featurizer=featurizer,
            config=training,
            n_classes=column_config["n_classes"],
        )
    raise BundleFormatError(f"unsupported column model type {model_type!r}")


def read_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a bundle's tensor state from its ``.npz`` archive.

    Returns the raw ``{dotted key: array}`` state dict without building a
    model — the input both to :func:`load_model_from_state` and to the
    shared-memory packer (:func:`repro.serving.shm.pack_bundle`).
    """
    path = Path(path)
    tensors_path = path / TENSORS_NAME
    if not tensors_path.is_file():
        raise BundleFormatError(f"no {TENSORS_NAME} in {path}")
    with np.load(tensors_path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def load_model_from_state(path: str | Path, state: dict[str, np.ndarray]) -> SatoModel:
    """Rebuild a bundle's model around an externally supplied tensor state.

    ``path`` still provides the manifest (config tree, tensor key list,
    variant); ``state`` provides the tensors — either the bundle's own
    ``.npz`` contents (:func:`read_state`) or zero-copy views into a
    shared-memory store (:class:`repro.serving.shm.SharedTensorStore`).
    The same manifest checks run either way, so a shared-memory load is
    validated exactly like the classic path.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    model_config = manifest["model"]

    sato_raw = dict(model_config["sato"])
    training = TrainingConfig(**sato_raw.pop("training"))
    sato_config = SatoConfig(training=training, **sato_raw)

    column_model = _build_column_model(model_config["column_model"])
    model = SatoModel(config=sato_config, column_model=column_model)

    expected_keys = manifest.get("tensor_keys")
    if expected_keys is not None and sorted(state) != expected_keys:
        missing = sorted(set(expected_keys) - set(state))
        extra = sorted(set(state) - set(expected_keys))
        raise BundleFormatError(
            f"tensor state does not match the manifest "
            f"(missing: {missing}, unexpected: {extra})"
        )
    model.load_state_dict(state)

    variant = model_config.get("variant")
    if variant is not None and variant != model.name:
        raise BundleFormatError(
            f"manifest variant {variant!r} does not match the rebuilt "
            f"model's variant {model.name!r}"
        )
    return model


def load_model(path: str | Path) -> SatoModel:
    """Load a fitted Sato model from a bundle directory (no retraining).

    Examples:
        >>> import tempfile
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=5, seed=1)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> with tempfile.TemporaryDirectory() as root:
        ...     reloaded = load_model(save_model(model, root + "/bundle"))
        ...     (reloaded.name, reloaded.predict_table(tables[0])
        ...      == model.predict_table(tables[0]))
        ('Base', True)
    """
    path = Path(path)
    return load_model_from_state(path, read_state(path))
