"""Asyncio HTTP front end for online serving (stdlib only).

:class:`ServingServer` exposes a :class:`~repro.serving.Predictor` over a
minimal HTTP/1.1 endpoint backed by the
:class:`~repro.serving.scheduler.MicroBatcher`:

* ``POST /v1/predict`` — one table in, per-column labels out,
* ``POST /v1/predict_batch`` — many tables in one request (each table is
  admitted to the micro-batch queue individually, so they coalesce with
  concurrent traffic),
* ``GET /healthz`` — liveness + drain state,
* ``GET /metrics`` — the :class:`~repro.serving.scheduler.ServingMetrics`
  snapshot plus the predictor's cache and batch counters.

Request/response schemas, curl examples and the error-code contract are
documented in ``docs/http_api.md``; tuning guidance lives in
``docs/operations.md``.  The server is deliberately hand-rolled on
``asyncio.start_server`` — one connection per request, ``Connection:
close`` — because the repo's no-new-dependencies rule rules out real web
frameworks, and the serving hot path is the model, not the socket.

Shutdown is two-phase so a load balancer can react: :meth:`begin_drain`
flips ``/healthz`` to ``draining`` and makes predict endpoints return
``503`` while in-flight work completes; :meth:`stop` then drains the
scheduler queue and closes the listener.  For tests, scripts and notebooks,
:func:`serve_in_thread` runs the whole server on a background event loop
and returns a handle with synchronous lifecycle methods.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Sequence

from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
    DrainingError,
    MicroBatcher,
    QueueFullError,
    ServingMetrics,
)
from repro.tables import Table

__all__ = ["MalformedRequest", "ServerHandle", "ServingServer", "serve_in_thread"]

#: Largest accepted request body; bigger payloads are refused with 413.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Hard ceiling on reading one request (connect to end of body).  Idle or
#: drip-feeding connections are cut off with 400 instead of pinning a
#: connection-handler task forever.
READ_TIMEOUT_SECONDS = 30.0

#: Hard ceiling on header lines per request (no legitimate client is close).
MAX_HEADER_LINES = 128

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class MalformedRequest(ValueError):
    """A request body that cannot be turned into tables (HTTP 400)."""


def _parse_table(payload, where: str) -> Table:
    """Validate one JSON table object and build a :class:`Table` from it.

    Examples:
        >>> table = _parse_table({"columns": [{"values": ["a", "b"]}]}, "table")
        >>> table.n_columns
        1
        >>> try:
        ...     _parse_table({"columns": "nope"}, "table")
        ... except MalformedRequest as error:
        ...     print(error)
        table.columns must be a list
    """
    if not isinstance(payload, dict):
        raise MalformedRequest(f"{where} must be an object")
    columns = payload.get("columns")
    if not isinstance(columns, list):
        raise MalformedRequest(f"{where}.columns must be a list")
    for index, column in enumerate(columns):
        if not isinstance(column, dict):
            raise MalformedRequest(f"{where}.columns[{index}] must be an object")
        values = column.get("values")
        if not isinstance(values, list):
            raise MalformedRequest(
                f"{where}.columns[{index}].values must be a list of strings"
            )
        if not all(value is None or isinstance(value, (str, int, float)) for value in values):
            raise MalformedRequest(
                f"{where}.columns[{index}].values must hold strings or numbers"
            )
    try:
        return Table.from_dict(payload)
    except (TypeError, ValueError, AttributeError) as error:
        raise MalformedRequest(f"{where} is not a valid table: {error}") from error


def _predict_payload(body: bytes) -> Table:
    payload = _decode_json(body)
    if "table" not in payload:
        raise MalformedRequest('body must be {"table": {...}}')
    return _parse_table(payload["table"], "table")


def _predict_batch_payload(body: bytes) -> list[Table]:
    payload = _decode_json(body)
    tables = payload.get("tables")
    if not isinstance(tables, list) or not tables:
        raise MalformedRequest('body must be {"tables": [{...}, ...]} with >= 1 table')
    return [
        _parse_table(table, f"tables[{index}]") for index, table in enumerate(tables)
    ]


def _decode_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise MalformedRequest(f"body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise MalformedRequest("body must be a JSON object")
    return payload


def _table_result(table: Table, labels: Sequence[str]) -> dict:
    return {
        "table_id": table.table_id,
        "labels": list(labels),
        "n_columns": table.n_columns,
    }


class ServingServer:
    """Online serving endpoint: micro-batched predictions over HTTP.

    Parameters
    ----------
    predictor:
        A :class:`~repro.serving.Predictor` (or any object with
        ``predict_tables`` and, optionally, ``cache_info``/``predict_info``
        for ``/metrics``).
    host / port:
        Bind address.  ``port=0`` picks a free port (see :attr:`port`).
    max_batch_size / max_wait_ms / max_queue:
        Micro-batching policy, passed to
        :class:`~repro.serving.scheduler.MicroBatcher`.
    """

    def __init__(
        self,
        predictor,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> None:
        self.predictor = predictor
        self.host = host
        self._requested_port = port
        self.metrics = ServingMetrics()
        self.batcher = MicroBatcher(
            predictor,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            metrics=self.metrics,
        )
        self._server: asyncio.base_events.Server | None = None
        self._draining = False

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` (or :meth:`stop`) has been called."""
        return self._draining

    async def start(self) -> "ServingServer":
        """Bind the listener and start the micro-batch dispatch loop."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def begin_drain(self) -> None:
        """Phase one of shutdown: refuse new predict work, stay observable.

        ``/healthz`` keeps answering (reporting ``draining``) so a load
        balancer can take the instance out of rotation; predict endpoints
        return ``503`` immediately.
        """
        self._draining = True

    async def stop(self) -> None:
        """Drain the queue, close the listener, release predictor resources."""
        await self.begin_drain()
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        close = getattr(self.predictor, "close", None)
        if close is not None:
            close()

    # ----------------------------------------------------------------- wire

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception:  # defensive: a handler bug must not kill the server
            status, payload = 500, {"error": "internal server error"}
        body = (json.dumps(payload) + "\n").encode("utf-8")
        headers = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(headers + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        # Reading the request is bounded in time, header count and body
        # size; every framing problem is answered with an explicit 4xx
        # (500 is reserved for the model failing).  Routing — which
        # includes queueing for the model — is deliberately outside the
        # read timeout.
        try:
            parsed = await asyncio.wait_for(
                self._read_request(reader), timeout=READ_TIMEOUT_SECONDS
            )
        except asyncio.TimeoutError:
            return 400, {"error": "request read timed out"}
        except asyncio.IncompleteReadError:
            return 400, {"error": "body shorter than Content-Length"}
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            # ValueError covers StreamReader's line-length limit overruns.
            return 400, {"error": "unreadable request"}
        if isinstance(parsed, tuple) and len(parsed) == 2:
            return parsed  # an error (status, payload) from the read phase
        method, path, body = parsed
        return await self._route(method, path, body)

    async def _read_request(self, reader: asyncio.StreamReader):
        """Read one request; returns (method, path, body) or (status, error)."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]

        content_length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "invalid Content-Length"}
                if content_length < 0:
                    return 400, {"error": "invalid Content-Length"}
        else:
            return 400, {"error": f"more than {MAX_HEADER_LINES} header lines"}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._health()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._metrics()
        if path == "/v1/predict":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._predict(body)
        if path == "/v1/predict_batch":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._predict_batch(body)
        return 404, {"error": f"unknown path {path}"}

    def _health(self) -> dict:
        snapshot = self.metrics.snapshot()
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "pending": self.batcher.pending,
            "uptime_seconds": snapshot["uptime_seconds"],
        }

    def _metrics(self) -> dict:
        snapshot = self.metrics.snapshot()
        cache_info = getattr(self.predictor, "cache_info", None)
        if cache_info is not None:
            cache = cache_info()
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
            snapshot["cache"] = cache
        predict_info = getattr(self.predictor, "predict_info", None)
        if predict_info is not None:
            snapshot["predictor"] = predict_info()
        snapshot["policy"] = {
            "max_batch_size": self.batcher.max_batch_size,
            "max_wait_ms": self.batcher.max_wait_ms,
            "max_queue": self.batcher.max_queue,
        }
        return snapshot

    async def _predict(self, body: bytes) -> tuple[int, dict]:
        if self._draining:
            self.metrics.record_rejected_draining()
            return 503, {"error": "server is draining"}
        try:
            table = _predict_payload(body)
        except MalformedRequest as error:
            self.metrics.record_malformed()
            return 400, {"error": str(error)}
        try:
            labels = await self.batcher.submit(table)
        except QueueFullError as error:
            return 429, {"error": str(error)}
        except DrainingError as error:
            return 503, {"error": str(error)}
        except Exception as error:
            return 500, {"error": f"prediction failed: {error}"}
        return 200, _table_result(table, labels)

    async def _predict_batch(self, body: bytes) -> tuple[int, dict]:
        if self._draining:
            self.metrics.record_rejected_draining()
            return 503, {"error": "server is draining"}
        try:
            tables = _predict_batch_payload(body)
        except MalformedRequest as error:
            self.metrics.record_malformed()
            return 400, {"error": str(error)}
        try:
            results = await self.batcher.submit_many(tables)
        except QueueFullError as error:
            return 429, {"error": str(error)}
        except DrainingError as error:
            return 503, {"error": str(error)}
        except Exception as error:
            return 500, {"error": f"prediction failed: {error}"}
        return 200, {
            "results": [
                _table_result(table, labels)
                for table, labels in zip(tables, results)
            ]
        }


class ServerHandle:
    """Synchronous handle to a :class:`ServingServer` on a background loop.

    Returned by :func:`serve_in_thread`; usable as a context manager so
    tests and scripts always shut the server down.
    """

    def __init__(self, server: ServingServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The bound port."""
        return self.server.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.server.host}:{self.server.port}"

    def _call(self, coroutine) -> None:
        asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout=60)

    def begin_drain(self) -> None:
        """Flip the server into draining mode (predicts 503, healthz alive)."""
        self._call(self.server.begin_drain())

    def stop(self) -> None:
        """Drain, close the listener, and stop the background loop."""
        if self._loop.is_closed():
            return
        self._call(self.server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    predictor,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    max_queue: int = DEFAULT_MAX_QUEUE,
) -> ServerHandle:
    """Start a :class:`ServingServer` on a background thread's event loop.

    The returned :class:`ServerHandle` exposes the bound port and
    synchronous ``begin_drain``/``stop`` methods, so plain-blocking code
    (tests, notebooks, load generators) can stand up a real socket server
    without touching asyncio.

    Examples:
        >>> class Echo:
        ...     def predict_tables(self, tables):
        ...         return [["t"] * table.n_columns for table in tables]
        >>> import json, urllib.request
        >>> with serve_in_thread(Echo(), port=0) as handle:
        ...     with urllib.request.urlopen(handle.base_url + "/healthz") as reply:
        ...         health = json.load(reply)
        >>> health["status"]
        'ok'
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-serving", daemon=True
    )
    thread.start()
    server = ServingServer(
        predictor,
        host=host,
        port=port,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
    )
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=60)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=60)
        loop.close()
        raise
    return ServerHandle(server, loop, thread)
