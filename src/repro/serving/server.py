"""Asyncio HTTP front end for online serving (stdlib only).

:class:`ServingServer` exposes a :class:`~repro.serving.Predictor` over a
minimal HTTP/1.1 endpoint backed by the
:class:`~repro.serving.scheduler.MicroBatcher`:

* ``POST /v1/predict`` — one table in, per-column labels out,
* ``POST /v1/predict_batch`` — many tables in one request (each table is
  admitted to the micro-batch queue individually, so they coalesce with
  concurrent traffic),
* ``GET /healthz`` — liveness + drain state,
* ``GET /metrics`` — the :class:`~repro.serving.scheduler.ServingMetrics`
  snapshot plus the predictor's cache and batch counters,
* ``GET /v1/admin/status`` — serving model identity (name / version /
  fingerprint), uptime and hot-swap count,
* ``POST /v1/admin/reload`` — zero-downtime hot swap: load a model (from
  the registry in registry mode, or by re-reading the bundle directory)
  and swap it into the predictor while traffic keeps flowing,
* ``POST /v1/admin/shadow`` — start/stop mirroring a fraction of live
  traffic to a candidate registry version
  (:class:`~repro.registry.ShadowEvaluator`).

In **registry mode** the server is bound to a
:class:`~repro.registry.ModelRegistry` name instead of a fixed bundle: it
serves the promoted version, and (when a watch interval is set) polls the
registry's promotion pointer, hot-swapping automatically when an operator
promotes or rolls back.  Every response carries an ``X-Model-Version``
header; predict responses carry the version that *actually served them*,
captured under the predictor's swap lock, so during a swap clients can
attribute each answer to the right model.

Request/response schemas, curl examples and the error-code contract are
documented in ``docs/http_api.md``; tuning guidance lives in
``docs/operations.md``.  The server is deliberately hand-rolled on
``asyncio.start_server`` — one connection per request, ``Connection:
close`` — because the repo's no-new-dependencies rule rules out real web
frameworks, and the serving hot path is the model, not the socket.

Shutdown is two-phase so a load balancer can react: :meth:`begin_drain`
flips ``/healthz`` to ``draining`` and makes predict endpoints return
``503`` while in-flight work completes; :meth:`stop` then drains the
scheduler queue and closes the listener.  For tests, scripts and notebooks,
:func:`serve_in_thread` runs the whole server on a background event loop
and returns a handle with synchronous lifecycle methods.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Sequence

from repro.obs import RequestLogger, get_tracer, render_prometheus
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
    DrainingError,
    MicroBatcher,
    QueueFullError,
    ServingMetrics,
)
from repro.tables import Table

__all__ = ["MalformedRequest", "ServerHandle", "ServingServer", "serve_in_thread"]

#: Largest accepted request body; bigger payloads are refused with 413.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Hard ceiling on reading one request (connect to end of body).  Idle or
#: drip-feeding connections are cut off with 400 instead of pinning a
#: connection-handler task forever.
READ_TIMEOUT_SECONDS = 30.0

#: Hard ceiling on header lines per request (no legitimate client is close).
MAX_HEADER_LINES = 128

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class MalformedRequest(ValueError):
    """A request body that cannot be turned into tables (HTTP 400)."""


class _PlainText(str):
    """Marker payload: already rendered, sent as ``text/plain`` verbatim."""


def _normalize_reply(reply) -> tuple[int, object, dict, dict]:
    """Expand a handler reply into ``(status, payload, headers, log fields)``.

    Handlers return 2-tuples (status, payload), 3-tuples adding response
    headers, or 4-tuples adding structured-log fields.
    """
    status, payload = reply[0], reply[1]
    headers = reply[2] if len(reply) > 2 else {}
    fields = reply[3] if len(reply) > 3 else {}
    return status, payload, headers, fields


def _parse_table(payload, where: str) -> Table:
    """Validate one JSON table object and build a :class:`Table` from it.

    Examples:
        >>> table = _parse_table({"columns": [{"values": ["a", "b"]}]}, "table")
        >>> table.n_columns
        1
        >>> try:
        ...     _parse_table({"columns": "nope"}, "table")
        ... except MalformedRequest as error:
        ...     print(error)
        table.columns must be a list
    """
    if not isinstance(payload, dict):
        raise MalformedRequest(f"{where} must be an object")
    columns = payload.get("columns")
    if not isinstance(columns, list):
        raise MalformedRequest(f"{where}.columns must be a list")
    for index, column in enumerate(columns):
        if not isinstance(column, dict):
            raise MalformedRequest(f"{where}.columns[{index}] must be an object")
        values = column.get("values")
        if not isinstance(values, list):
            raise MalformedRequest(
                f"{where}.columns[{index}].values must be a list of strings"
            )
        if not all(
            value is None or isinstance(value, (str, int, float))
            for value in values
        ):
            raise MalformedRequest(
                f"{where}.columns[{index}].values must hold strings or numbers"
            )
    try:
        return Table.from_dict(payload)
    except (TypeError, ValueError, AttributeError) as error:
        raise MalformedRequest(f"{where} is not a valid table: {error}") from error


def _predict_payload(body: bytes) -> Table:
    payload = _decode_json(body)
    if "table" not in payload:
        raise MalformedRequest('body must be {"table": {...}}')
    return _parse_table(payload["table"], "table")


def _predict_batch_payload(body: bytes) -> list[Table]:
    payload = _decode_json(body)
    tables = payload.get("tables")
    if not isinstance(tables, list) or not tables:
        raise MalformedRequest('body must be {"tables": [{...}, ...]} with >= 1 table')
    return [
        _parse_table(table, f"tables[{index}]") for index, table in enumerate(tables)
    ]


def _decode_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise MalformedRequest(f"body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise MalformedRequest("body must be a JSON object")
    return payload


def _table_result(
    table: Table, labels: Sequence[str], version: str | None = None
) -> dict:
    result = {
        "table_id": table.table_id,
        "labels": list(labels),
        "n_columns": table.n_columns,
    }
    if version is not None:
        result["model_version"] = version
    return result


class ServingServer:
    """Online serving endpoint: micro-batched predictions over HTTP.

    Parameters
    ----------
    predictor:
        A :class:`~repro.serving.Predictor` (or any object with
        ``predict_tables`` and, optionally, ``cache_info``/``predict_info``
        for ``/metrics``).
    host / port:
        Bind address.  ``port=0`` picks a free port (see :attr:`port`).
    max_batch_size / max_wait_ms / max_queue:
        Micro-batching policy, passed to
        :class:`~repro.serving.scheduler.MicroBatcher`.
    registry / model_name:
        Registry mode: a :class:`~repro.registry.ModelRegistry` plus the
        registered name this server serves.  Enables ``POST
        /v1/admin/reload`` by version, shadow evaluation, and (with
        ``watch_interval``) automatic hot-swap on promote/rollback.
    watch_interval:
        Seconds between promotion-pointer polls in registry mode; None
        disables watching (reloads remain available via the admin API).
    bundle_path:
        Bundle-mode reload source: ``POST /v1/admin/reload`` re-reads this
        directory (for in-place bundle updates without a registry).
    shadow:
        Optional pre-attached :class:`~repro.registry.ShadowEvaluator`;
        normally shadows are started through ``POST /v1/admin/shadow``.
    batcher:
        Optional pre-built scheduler to serve through instead of the
        default :class:`~repro.serving.scheduler.MicroBatcher` — anything
        with the same ``start``/``submit_versioned``/``drain``/``pending``
        surface.  This is how a :class:`~repro.serving.fleet.ServingFleet`
        plugs in: the fleet is passed as *both* ``predictor`` (model
        identity, hot-swap facade) and ``batcher`` (request scheduling
        across worker processes).  An injected batcher brings its own
        ``metrics``; reloads are delegated to its
        ``promote_version``/``reload_bundle`` when it has them, and
        ``/healthz`` + ``/metrics`` pick up its ``health()`` and
        ``fleet_metrics()`` when present.
    """

    def __init__(
        self,
        predictor,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        registry=None,
        model_name: str | None = None,
        watch_interval: float | None = None,
        bundle_path: str | None = None,
        shadow=None,
        batcher=None,
        log_format: str = "text",
    ) -> None:
        if registry is not None and model_name is None:
            raise ValueError("registry mode requires model_name")
        if log_format not in ("text", "json"):
            raise ValueError("log_format must be 'text' or 'json'")
        if watch_interval is not None and watch_interval <= 0:
            raise ValueError("watch_interval must be positive")
        self.predictor = predictor
        self.host = host
        self._requested_port = port
        if batcher is not None:
            self.batcher = batcher
            self.metrics = batcher.metrics
        else:
            self.metrics = ServingMetrics()
            self.batcher = MicroBatcher(
                predictor,
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
                max_queue=max_queue,
                metrics=self.metrics,
            )
        self.registry = registry
        self.model_name = model_name
        self.watch_interval = watch_interval
        self.bundle_path = bundle_path
        self.shadow = shadow
        # JSON request logs are opt-in (`serve --log-format json`); the
        # text default keeps the server quiet, as before.
        self.logger = RequestLogger(enabled=log_format == "json")
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._reload_lock: asyncio.Lock | None = None
        self._watch_task: asyncio.Task | None = None
        self._watcher = None
        self._swap_errors = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` (or :meth:`stop`) has been called."""
        return self._draining

    async def start(self) -> "ServingServer":
        """Bind the listener and start the micro-batch dispatch loop."""
        await self.batcher.start()
        self._reload_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        if self.registry is not None and self.watch_interval is not None:
            self._watch_task = asyncio.get_running_loop().create_task(
                self._watch_registry()
            )
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def begin_drain(self) -> None:
        """Phase one of shutdown: refuse new predict work, stay observable.

        ``/healthz`` keeps answering (reporting ``draining``) so a load
        balancer can take the instance out of rotation; predict endpoints
        return ``503`` immediately.
        """
        self._draining = True

    async def stop(self) -> None:
        """Drain the queue, close the listener, release predictor resources."""
        await self.begin_drain()
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
            self._watch_task = None
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.shadow is not None:
            shadow, self.shadow = self.shadow, None
            await asyncio.get_running_loop().run_in_executor(None, shadow.close)
        close = getattr(self.predictor, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------- hot swap

    async def _watch_registry(self) -> None:
        """Poll the registry promotion pointer; hot-swap on change.

        Runs as a background task in registry-watch mode, driving a
        :class:`~repro.registry.RegistryWatcher`.  Before every poll the
        watcher's baseline is re-synced to the *predictor's live version*,
        so the server converges to the promoted version even when admin
        reloads moved the predictor somewhere else in between.  Errors (a
        swap that fails to load, a briefly unreadable registry) are
        counted and survived — the watcher must never take serving down.
        """
        from repro.registry import RegistryWatcher

        self._watcher = RegistryWatcher(self.registry, self.model_name)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.watch_interval)
            self._watcher.resync(getattr(self.predictor, "model_version", None))
            promoted = await loop.run_in_executor(None, self._watcher.poll)
            if promoted is None:
                continue
            try:
                await self._swap_to_version(promoted)
            except Exception:
                self._swap_errors += 1

    async def _swap_to_version(self, version: str | None) -> dict:
        """Load a registry version and hot-swap it into the predictor.

        Loading (disk + integrity check) and the swap run in the default
        executor so the event loop keeps answering health checks; the
        reload lock serializes concurrent admin reloads and watcher swaps.
        A batcher that knows how to converge itself (a
        :class:`~repro.serving.fleet.ServingFleet`'s two-phase
        ``promote_version``) is delegated to instead — the fleet owns the
        swap protocol across its worker processes.
        """
        loop = asyncio.get_running_loop()
        async with self._reload_lock:
            promote = getattr(self.batcher, "promote_version", None)
            if promote is not None:
                return await promote(version)

            def load_and_swap() -> dict:
                model, info = self.registry.load(self.model_name, version)
                return self.predictor.swap_model(
                    model, model_name=info.name, model_version=info.version
                )

            return await loop.run_in_executor(None, load_and_swap)

    async def _reload_bundle(self) -> dict:
        """Bundle-mode reload: re-read the bundle directory and swap."""
        from repro.serving.bundle import load_model

        loop = asyncio.get_running_loop()
        async with self._reload_lock:
            reload_fleet = getattr(self.batcher, "reload_bundle", None)
            if reload_fleet is not None:
                return await reload_fleet()

            def load_and_swap() -> dict:
                model = load_model(self.bundle_path)
                return self.predictor.swap_model(model)

            return await loop.run_in_executor(None, load_and_swap)

    # ----------------------------------------------------------------- wire

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tracer = get_tracer()
        # The request span is the trace root: minted at admission, it
        # covers read, routing (including the micro-batch queue wait and
        # the model batch, whose spans parent under it) and the response
        # encode.  Its trace ID is echoed in the X-Trace-Id header.
        with tracer.span("request") as request_span:
            try:
                reply = await self._handle_request(reader)
                status, payload, extra_headers, log_fields = _normalize_reply(reply)
            except Exception:  # defensive: a handler bug must not kill the server
                status, payload = 500, {"error": "internal server error"}
                extra_headers, log_fields = {}, {}
            # Every response names the serving model version; predict
            # handlers override this with the version that served them.
            if "X-Model-Version" not in extra_headers:
                version = getattr(self.predictor, "model_version", None)
                if version is not None:
                    extra_headers["X-Model-Version"] = str(version)
            if request_span.trace_id:
                extra_headers.setdefault("X-Trace-Id", request_span.trace_id)
            if isinstance(payload, _PlainText):
                body = str(payload).encode("utf-8")
                content_type = "text/plain; charset=utf-8"
            else:
                with tracer.span("encode.json"):
                    body = (json.dumps(payload) + "\n").encode("utf-8")
                content_type = "application/json"
        self.logger.log(
            "request",
            trace_id=request_span.trace_id or None,
            status=status,
            duration_ms=request_span.duration * 1e3,
            **log_fields,
        )
        extra = "".join(f"{name}: {value}\r\n" for name, value in extra_headers.items())
        headers = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(headers + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to tell it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader):
        # Reading the request is bounded in time, header count and body
        # size; every framing problem is answered with an explicit 4xx
        # (500 is reserved for the model failing).  Routing — which
        # includes queueing for the model — is deliberately outside the
        # read timeout.
        try:
            parsed = await asyncio.wait_for(
                self._read_request(reader), timeout=READ_TIMEOUT_SECONDS
            )
        except asyncio.TimeoutError:
            return 400, {"error": "request read timed out"}
        except asyncio.IncompleteReadError:
            return 400, {"error": "body shorter than Content-Length"}
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            # ValueError covers StreamReader's line-length limit overruns.
            return 400, {"error": "unreadable request"}
        if isinstance(parsed, tuple) and len(parsed) == 2:
            return parsed  # an error (status, payload) from the read phase
        method, path, body = parsed
        status, payload, headers, fields = _normalize_reply(
            await self._route(method, path, body)
        )
        fields.setdefault("method", method)
        fields.setdefault("path", path)
        return status, payload, headers, fields

    async def _read_request(self, reader: asyncio.StreamReader):
        """Read one request; returns (method, path, body) or (status, error)."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]

        content_length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "invalid Content-Length"}
                if content_length < 0:
                    return 400, {"error": "invalid Content-Length"}
        else:
            return 400, {"error": f"more than {MAX_HEADER_LINES} header lines"}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._health()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, await self._metrics()
        if path == "/metrics.prom":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, _PlainText(render_prometheus(await self._metrics()))
        if path == "/v1/predict":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._predict(body)
        if path == "/v1/predict_batch":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._predict_batch(body)
        if path == "/v1/admin/status":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._admin_status()
        if path == "/v1/admin/reload":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._admin_reload(body)
        if path == "/v1/admin/shadow":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._admin_shadow(body)
        return 404, {"error": f"unknown path {path}"}

    def _health(self) -> dict:
        snapshot = self.metrics.snapshot()
        health = {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "pending": self.batcher.pending,
            "uptime_seconds": snapshot["uptime_seconds"],
            "started_at": snapshot["started_at"],
        }
        fleet_health = getattr(self.batcher, "health", None)
        if fleet_health is not None:
            fleet = fleet_health()
            health["fleet"] = fleet
            # A fleet with zero live workers cannot serve: a load balancer
            # should see that on /healthz, not discover it via 500s.
            if fleet.get("alive", 1) == 0 and not self._draining:
                health["status"] = "unhealthy"
        return health

    async def _metrics(self) -> dict:
        snapshot = self.metrics.snapshot()
        cache_info = getattr(self.predictor, "cache_info", None)
        if cache_info is not None:
            cache = cache_info()
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
            snapshot["cache"] = cache
        predict_info = getattr(self.predictor, "predict_info", None)
        if predict_info is not None:
            snapshot["predictor"] = predict_info()
        if self.shadow is not None:
            snapshot["shadow"] = self.shadow.snapshot()
        fleet_metrics = getattr(self.batcher, "fleet_metrics", None)
        if fleet_metrics is not None:
            snapshot["fleet"] = await fleet_metrics()
        # Always-on per-stage aggregates from the process tracer (for a
        # fleet these include worker spans re-parented on this front end).
        snapshot["stages"] = get_tracer().stages.snapshot()
        snapshot["policy"] = {
            "max_batch_size": self.batcher.max_batch_size,
            "max_wait_ms": self.batcher.max_wait_ms,
            "max_queue": self.batcher.max_queue,
        }
        return snapshot

    def _admin_status(self) -> dict:
        snapshot = self.metrics.snapshot()
        status = {
            "model": {
                "name": getattr(self.predictor, "model_name", None),
                "version": getattr(self.predictor, "model_version", None),
                "fingerprint": getattr(self.predictor, "fingerprint", None),
            },
            "uptime_seconds": snapshot["uptime_seconds"],
            "swap_count": getattr(self.predictor, "swap_count", 0),
            "draining": self._draining,
            "registry": None,
            "shadow": self.shadow.snapshot() if self.shadow is not None else None,
        }
        if self.registry is not None:
            poll_errors = self._watcher.errors if self._watcher is not None else 0
            status["registry"] = {
                "root": str(self.registry.root),
                "model_name": self.model_name,
                "watch_interval": self.watch_interval,
                "watching": self._watch_task is not None,
                "watch_errors": poll_errors + self._swap_errors,
            }
        return status

    async def _admin_reload(self, body: bytes) -> tuple[int, dict]:
        if self._draining:
            return 503, {"error": "server is draining"}
        try:
            payload = _decode_json(body) if body else {}
        except MalformedRequest as error:
            return 400, {"error": str(error)}
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            return 400, {"error": "version must be a string"}
        try:
            if self.registry is not None:
                result = await self._swap_to_version(version)
            elif self.bundle_path is not None:
                if version is not None:
                    return 400, {
                        "error": "version requires registry mode "
                        "(serve --registry/--model-name)"
                    }
                result = await self._reload_bundle()
            else:
                return 400, {
                    "error": "no reload source: server was started without "
                    "a registry or a bundle path"
                }
        except Exception as error:
            return 500, {"error": f"reload failed: {error}"}
        return 200, {"reloaded": True, **result}

    async def _admin_shadow(self, body: bytes) -> tuple[int, dict]:
        try:
            payload = _decode_json(body) if body else {}
        except MalformedRequest as error:
            return 400, {"error": str(error)}
        if payload.get("stop"):
            if self.shadow is not None:
                shadow, self.shadow = self.shadow, None
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, shadow.close)
                return 200, {"shadow": None, "stopped": shadow.snapshot()}
            return 200, {"shadow": None, "stopped": None}
        if self.registry is None:
            return 400, {"error": "shadow evaluation requires registry mode"}
        version = payload.get("version")
        if not isinstance(version, str):
            return 400, {
                "error": 'body must be {"version": "vNNNN", ...} or {"stop": true}'
            }
        fraction = payload.get("fraction", 0.1)
        if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
            return 400, {"error": "fraction must be a number in [0, 1]"}
        from repro.registry import ShadowEvaluator
        from repro.serving.predictor import Predictor

        loop = asyncio.get_running_loop()
        try:
            candidate = await loop.run_in_executor(
                None,
                lambda: Predictor.from_registry(
                    self.registry, self.model_name, version=version
                ),
            )
        except Exception as error:
            return 400, {"error": f"cannot load candidate {version}: {error}"}
        new_shadow = ShadowEvaluator(
            candidate, fraction=float(fraction), version=version
        )
        old_shadow, self.shadow = self.shadow, new_shadow
        if old_shadow is not None:
            await loop.run_in_executor(None, old_shadow.close)
        return 200, {"shadow": new_shadow.snapshot()}

    def _mirror_to_shadow(self, table: Table, labels: Sequence[str]) -> None:
        """Hand one served request to the shadow evaluator (never raises)."""
        shadow = self.shadow
        if shadow is None:
            return
        try:
            shadow.submit(table, list(labels))
        except Exception:
            pass  # a broken shadow must never affect the serving path

    async def _submit_traced(self, table: Table) -> tuple[list[str], str | None, dict]:
        """Submit through the batcher, preferring its traced surface.

        Custom batchers without ``submit_traced`` still work; they simply
        contribute no per-request observability info.
        """
        submit = getattr(self.batcher, "submit_traced", None)
        if submit is not None:
            return await submit(table)
        labels, version = await self.batcher.submit_versioned(table)
        return labels, version, {}

    async def _predict(self, body: bytes):
        if self._draining:
            self.metrics.record_rejected_draining()
            return 503, {"error": "server is draining"}
        try:
            with get_tracer().span("request.parse"):
                table = _predict_payload(body)
        except MalformedRequest as error:
            self.metrics.record_malformed()
            return 400, {"error": str(error)}, {}, {"outcome": "malformed"}
        try:
            labels, version, info = await self._submit_traced(table)
        except QueueFullError as error:
            return 429, {"error": str(error)}, {}, {"outcome": "queue_full"}
        except DrainingError as error:
            return 503, {"error": str(error)}, {}, {"outcome": "draining"}
        except Exception as error:
            return 500, {"error": f"prediction failed: {error}"}, {}, {
                "outcome": "error"
            }
        self._mirror_to_shadow(table, labels)
        headers = {"X-Model-Version": str(version)} if version is not None else {}
        fields = {
            "outcome": "ok",
            "model_version": version,
            "n_columns": table.n_columns,
            "batch_size": info.get("batch_size"),
            "queue_wait_ms": (
                info["queue_wait"] * 1e3 if "queue_wait" in info else None
            ),
        }
        return 200, _table_result(table, labels, version), headers, fields

    async def _predict_batch(self, body: bytes):
        if self._draining:
            self.metrics.record_rejected_draining()
            return 503, {"error": "server is draining"}
        try:
            tables = _predict_batch_payload(body)
        except MalformedRequest as error:
            self.metrics.record_malformed()
            return 400, {"error": str(error)}
        try:
            results = await self.batcher.submit_many_versioned(tables)
        except QueueFullError as error:
            return 429, {"error": str(error)}
        except DrainingError as error:
            return 503, {"error": str(error)}
        except Exception as error:
            return 500, {"error": f"prediction failed: {error}"}
        for table, (labels, _version) in zip(tables, results):
            self._mirror_to_shadow(table, labels)
        # Tables of one batch request can straddle a hot swap (they are
        # admitted individually); the header reports the last version seen,
        # each result object carries its own.
        versions = [version for _labels, version in results if version is not None]
        headers = {"X-Model-Version": str(versions[-1])} if versions else {}
        return 200, {
            "results": [
                _table_result(table, labels, version)
                for table, (labels, version) in zip(tables, results)
            ]
        }, headers


class ServerHandle:
    """Synchronous handle to a :class:`ServingServer` on a background loop.

    Returned by :func:`serve_in_thread`; usable as a context manager so
    tests and scripts always shut the server down.
    """

    def __init__(
        self,
        server: ServingServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The bound port."""
        return self.server.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.server.host}:{self.server.port}"

    def _call(self, coroutine) -> None:
        asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(timeout=60)

    def begin_drain(self) -> None:
        """Flip the server into draining mode (predicts 503, healthz alive)."""
        self._call(self.server.begin_drain())

    def stop(self) -> None:
        """Drain, close the listener, and stop the background loop."""
        if self._loop.is_closed():
            return
        self._call(self.server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    predictor,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    max_queue: int = DEFAULT_MAX_QUEUE,
    registry=None,
    model_name: str | None = None,
    watch_interval: float | None = None,
    bundle_path: str | None = None,
    shadow=None,
    batcher=None,
    log_format: str = "text",
) -> ServerHandle:
    """Start a :class:`ServingServer` on a background thread's event loop.

    The returned :class:`ServerHandle` exposes the bound port and
    synchronous ``begin_drain``/``stop`` methods, so plain-blocking code
    (tests, notebooks, load generators) can stand up a real socket server
    without touching asyncio.

    Examples:
        >>> class Echo:
        ...     def predict_tables(self, tables):
        ...         return [["t"] * table.n_columns for table in tables]
        >>> import json, urllib.request
        >>> with serve_in_thread(Echo(), port=0) as handle:
        ...     with urllib.request.urlopen(handle.base_url + "/healthz") as reply:
        ...         health = json.load(reply)
        >>> health["status"]
        'ok'
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-serving", daemon=True
    )
    thread.start()
    server = ServingServer(
        predictor,
        host=host,
        port=port,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        registry=registry,
        model_name=model_name,
        watch_interval=watch_interval,
        bundle_path=bundle_path,
        shadow=shadow,
        batcher=batcher,
        log_format=log_format,
    )
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=60)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=60)
        loop.close()
        raise
    return ServerHandle(server, loop, thread)
