"""Prefork serving fleet: N workers, one shared copy of the weights.

A single serving process is bounded by the GIL: featurization, LDA
inference and the column-network forward are pure-Python/NumPy work, so
one process saturates one core.  :class:`ServingFleet` scales the serving
layer across cores without multiplying its memory footprint:

* **Shared-memory bundles** — the parent packs the bundle's tensors once
  into a file-backed store under ``/dev/shm``
  (:mod:`repro.serving.shm`); every worker maps it read-only, so the
  fleet holds one physical copy of the weights regardless of worker
  count.
* **Prefork workers** — each worker is a real OS process owning a full
  :class:`~repro.serving.Predictor` (feature cache, topic cache,
  micro-batching) over the shared tensors, fed over a duplex pipe.
* **Fingerprint-affinity routing** — the front end routes each table by
  a consistent hash of its column-content fingerprints
  (:class:`HashRing`), so repeated traffic over the same tables lands on
  the same worker and its LRU caches stay hot.  When the preferred
  worker's queue is full the request *spills* to the next live worker on
  the ring instead of being refused.
* **Fleet-wide convergence** — promoting a registry version swaps every
  worker in two phases (``prepare`` stages the new model next to the old
  one on every worker; ``commit`` flips them), so a rolling promote
  never leaves the fleet half-old/half-new for longer than one batch and
  no single batch ever mixes model versions (each worker commits under
  its predictor's swap lock, between batches).
* **Supervision** — a crashed worker fails its in-flight requests, is
  respawned from the *current* bundle/store (post-promote state, not
  boot state), and the fleet keeps serving on the survivors meanwhile.

The fleet quacks like both halves of the single-process serving stack:
it has the :class:`~repro.serving.Predictor` identity surface
(``model_version`` / ``fingerprint`` / ``swap_count`` / ``close``) *and*
the :class:`~repro.serving.scheduler.MicroBatcher` scheduling surface
(``start`` / ``submit_versioned`` / ``drain`` / ``pending``), so
:class:`~repro.serving.server.ServingServer` serves a fleet by being
handed one object as both ``predictor`` and ``batcher``.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.obs import get_tracer
from repro.serving.predictor import Predictor, column_fingerprint
from repro.serving.scheduler import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WAIT_MS,
    DrainingError,
    QueueFullError,
    ServingMetrics,
    _percentile,
)
from repro.serving.shm import (
    default_store_dir,
    load_model_shared,
    pack_bundle,
    remove_store,
)
from repro.tables import Table

__all__ = [
    "DEFAULT_RING_REPLICAS",
    "FleetError",
    "HashRing",
    "ServingFleet",
    "WorkerSpec",
    "table_routing_key",
]

#: Virtual nodes per worker on the consistent-hash ring.  Enough that the
#: keyspace splits near-evenly across a handful of workers; cheap enough
#: that ring construction is instant.
DEFAULT_RING_REPLICAS = 64

#: Seconds the parent waits for a freshly spawned worker to report ready
#: (imports + bundle manifest read + shared-store mmap).
SPAWN_TIMEOUT_SECONDS = 120.0

#: Reserved request id for the one unsolicited message a worker ever
#: sends: its readiness report.  Real requests count from 1.
_READY_ID = 0


class FleetError(RuntimeError):
    """The fleet cannot serve (not started, no live workers, bad spec)."""


# --------------------------------------------------------------------- routing


def table_routing_key(table: Table) -> int:
    """Stable 64-bit routing key from a table's column-content fingerprints.

    Built on the same per-column fingerprints the predictor's feature
    cache is keyed on, so two requests that would hit the same cache
    entries hash to the same key — and therefore (via :class:`HashRing`)
    to the same worker.  Headers and table ids are excluded, exactly like
    the cache keys.
    """
    digest = hashlib.blake2b(digest_size=8)
    for column in table.columns:
        digest.update(bytes.fromhex(column_fingerprint(column)))
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent hashing over worker ids with virtual nodes.

    Keys are 64-bit integers; each worker owns ``replicas`` points on the
    ring.  :meth:`lookup` gives the preferred owner; :meth:`walk` yields
    every worker in ring order starting from the preferred owner, which
    is the spill order when queues fill up.  Adding or removing one
    worker moves only ~1/N of the keyspace, so cache locality survives
    fleet resizes and worker restarts.

    Examples:
        >>> ring = HashRing([0, 1, 2])
        >>> ring.lookup(1234) in (0, 1, 2)
        True
        >>> ring.lookup(1234) == ring.lookup(1234)   # deterministic
        True
        >>> sorted(ring.walk(1234)) == [0, 1, 2]     # spill order covers all
        True
    """

    def __init__(
        self, worker_ids: Sequence[int], replicas: int = DEFAULT_RING_REPLICAS
    ) -> None:
        if not worker_ids:
            raise ValueError("HashRing needs at least one worker id")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.worker_ids = list(worker_ids)
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for wid in self.worker_ids:
            for replica in range(replicas):
                token = f"{wid}:{replica}".encode("ascii")
                digest = hashlib.blake2b(token, digest_size=8).digest()
                points.append((int.from_bytes(digest, "big"), wid))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [wid for _, wid in points]

    def lookup(self, key: int) -> int:
        """The preferred worker for a routing key."""
        index = bisect.bisect_right(self._points, key) % len(self._points)
        return self._owners[index]

    def walk(self, key: int) -> Iterator[int]:
        """Every worker id in ring order from the preferred owner (no dups)."""
        start = bisect.bisect_right(self._points, key) % len(self._points)
        seen: set[int] = set()
        for offset in range(len(self._points)):
            wid = self._owners[(start + offset) % len(self._points)]
            if wid not in seen:
                seen.add(wid)
                yield wid


# ---------------------------------------------------------------- worker side


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its serving runtime.

    Shipped through the spawn pickle; every field is a plain value, so a
    spec is also the restart recipe — a respawned worker gets the spec of
    the fleet's *current* state, not its boot state.
    """

    bundle_path: str
    store_path: str
    model_name: str | None
    model_version: str | None
    cache_size: int
    feature_backend: str | None
    model_backend: str
    max_batch_size: int
    max_wait_ms: float
    metrics_window: int


def _frame_context(message: tuple):
    """Trace context of a predict frame (None for frames that carry none)."""
    return message[3] if len(message) > 3 else None


class _WorkerRuntime:
    """The serving loop living inside one fleet worker process."""

    def __init__(self, conn, spec: WorkerSpec) -> None:
        self.conn = conn
        self.spec = spec
        self.predictor = Predictor.from_shared_bundle(
            spec.bundle_path,
            spec.store_path,
            cache_size=spec.cache_size,
            feature_backend=spec.feature_backend,
            model_backend=spec.model_backend,
            model_name=spec.model_name,
            model_version=spec.model_version,
        )
        self.metrics = ServingMetrics(window=spec.metrics_window)
        self.max_wait = spec.max_wait_ms / 1e3
        # Models staged by ``prepare`` and not yet committed/discarded:
        # token -> (model, shared store, version tag).
        self._staged: dict[str, tuple] = {}

    # The run loop: greedy micro-batching straight off the pipe.  The
    # first predict message anchors a batch; companions are collected
    # while the pipe keeps delivering (bounded by max_batch_size and the
    # same max_wait_ms policy as the single-process MicroBatcher).  A
    # control message ends the batch — pipes are FIFO, so handling it
    # *after* dispatching the batch preserves the ordering guarantee the
    # two-phase swap relies on (every predict sent before a ``commit``
    # is served by the pre-commit model).

    def run(self) -> None:
        trailing = None
        running = True
        while running:
            if trailing is not None:
                message, trailing = trailing, None
            else:
                try:
                    message = self.conn.recv()
                except (EOFError, OSError):
                    break
            if message[0] != "predict":
                running = self._handle_control(message)
                continue
            received = time.monotonic()
            batch = [(message[1], message[2], received, _frame_context(message))]
            deadline = received + self.max_wait
            while len(batch) < self.spec.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.conn.poll(remaining):
                    break
                try:
                    companion = self.conn.recv()
                except (EOFError, OSError):
                    running = False
                    break
                if companion[0] != "predict":
                    trailing = companion
                    break
                batch.append(
                    (
                        companion[1],
                        companion[2],
                        time.monotonic(),
                        _frame_context(companion),
                    )
                )
            self._dispatch(batch)

    def _dispatch(self, batch: list[tuple]) -> None:
        for _ in batch:
            self.metrics.record_admitted()
        tables = [table for _rid, table, _at, _ctx in batch]
        tracer = get_tracer()
        started = time.monotonic()
        waits = [started - received for _rid, _table, received, _ctx in batch]
        for wait in waits:
            self.metrics.record_queue_wait(wait)
            tracer.observe("queue.wait", wait)
        # The first traced request anchors the batch: the worker's spans
        # (worker.batch and everything the predictor opens inside it) are
        # recorded under that request's propagated context and shipped back
        # with its reply, so the front end can reassemble one whole trace.
        anchor = next(
            (ctx for _rid, _table, _at, ctx in batch if ctx is not None), None
        )
        token = tracer.attach(anchor)
        try:
            with tracer.span("worker.batch", batch_size=len(tables)):
                results = self.predictor.predict_tables(tables)
                version = self.predictor.last_batch_version
        except Exception as error:
            reason = f"{type(error).__name__}: {error}"
            for rid, _table, _at, _ctx in batch:
                self.metrics.record_error()
                self._send(("err", rid, reason))
            return
        finally:
            tracer.detach(token)
        seconds = time.monotonic() - started
        self.metrics.record_batch(
            n_tables=len(tables),
            n_columns=sum(table.n_columns for table in tables),
            seconds=seconds,
        )
        spans = tracer.take(anchor[0]) if anchor is not None else []
        finished = time.monotonic()
        for (rid, _table, received, ctx), labels, wait in zip(batch, results, waits):
            self.metrics.record_request(finished - received)
            info: dict = {"batch_size": len(tables), "queue_wait": wait}
            if spans and ctx is not None:
                info["spans"], spans = spans, []
            self._send(("ok", rid, (labels, version, info)))

    def _handle_control(self, message: tuple) -> bool:
        kind, rid, payload = message
        try:
            if kind == "ping":
                self._send(("ok", rid, self._identity()))
            elif kind == "metrics":
                self._send(
                    (
                        "ok",
                        rid,
                        {
                            "pid": os.getpid(),
                            "metrics": self.metrics.snapshot(),
                            "latencies": self.metrics.latencies(),
                            "queue_waits": self.metrics.queue_waits(),
                            "stages": get_tracer().stages.snapshot(),
                            "cache": self.predictor.cache_info(),
                            "predictor": self.predictor.predict_info(),
                        },
                    )
                )
            elif kind == "prepare":
                model, store = load_model_shared(
                    payload["bundle_path"], payload["store_path"]
                )
                self._staged[payload["token"]] = (model, store, payload["version"])
                self._send(("ok", rid, {"pid": os.getpid()}))
            elif kind == "commit":
                model, store, version = self._staged.pop(payload["token"])
                # swap_model serializes against in-flight batches via the
                # predictor's swap lock: the current batch finishes on the
                # old model, every later batch runs on the new one.
                summary = self.predictor.swap_model(
                    model, model_name=self.spec.model_name, model_version=version
                )
                old_store, self.predictor.shared_store = (
                    self.predictor.shared_store, store
                )
                if old_store is not None:
                    old_store.close()
                self._send(("ok", rid, summary))
            elif kind == "discard":
                staged = self._staged.pop(payload["token"], None)
                if staged is not None:
                    staged[1].close()
                self._send(("ok", rid, {"discarded": staged is not None}))
            elif kind == "drain":
                self._send(("ok", rid, {"pid": os.getpid()}))
                return False
            else:
                self._send(("err", rid, f"unknown command {kind!r}"))
        except Exception as error:
            self._send(("err", rid, f"{type(error).__name__}: {error}"))
        return True

    def _identity(self) -> dict:
        return {
            "pid": os.getpid(),
            "version": self.predictor.model_version,
            "fingerprint": self.predictor.fingerprint,
            "model_name": self.predictor.model_name,
        }

    def _send(self, message: tuple) -> None:
        try:
            self.conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # parent is gone; the worker will notice on the next recv

    def close(self) -> None:
        for _model, store, _version in self._staged.values():
            store.close()
        self._staged.clear()
        self.predictor.close()


def _fleet_worker_main(conn, spec: WorkerSpec) -> None:
    """Entry point of a fleet worker process."""
    # Ctrl-C goes to the parent's drain path; workers must outlive the
    # signal so in-flight batches finish and the drain handshake runs.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        runtime = _WorkerRuntime(conn, spec)
    except Exception as error:
        try:
            conn.send(("err", _READY_ID, f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):
            pass
        conn.close()
        return
    try:
        conn.send(("ok", _READY_ID, runtime._identity()))
        runtime.run()
    except (BrokenPipeError, OSError):
        pass
    finally:
        runtime.close()
        conn.close()


# ---------------------------------------------------------------- parent side


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    wid: int
    process: object
    conn: object
    pid: int
    alive: bool = True
    retired: bool = False
    inflight: int = 0
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    # rid -> (future, kind, submitted_at, n_columns); n_columns is 0 for
    # control round-trips.
    pending: dict = field(default_factory=dict)
    reader: threading.Thread | None = None
    ready_payload: dict = field(default_factory=dict)


class ServingFleet:
    """A supervised pool of prefork serving workers behind one front end.

    Parameters
    ----------
    n_workers:
        Worker process count (>= 1).  Throughput scales with cores until
        featurization saturates memory bandwidth; see
        ``docs/operations.md`` for sizing guidance.
    bundle_path / registry + model_name / model_version:
        The model source, exactly like :class:`~repro.serving.Predictor`:
        either a loose bundle directory, or a registry name (serving the
        promoted version unless ``model_version`` pins one).
    cache_size / feature_backend / model_backend:
        Forwarded to every worker's :class:`~repro.serving.Predictor`.
    max_batch_size / max_wait_ms:
        Per-worker greedy micro-batching policy (same meaning as
        :class:`~repro.serving.scheduler.MicroBatcher`).
    max_queue:
        Fleet-wide in-flight bound; beyond it submissions raise
        :class:`~repro.serving.scheduler.QueueFullError` (HTTP 429).
    worker_queue:
        Per-worker in-flight bound before a request spills to the next
        worker on the ring.  Defaults to ``max(1, max_queue // n_workers)``.
    ring_replicas:
        Virtual nodes per worker on the routing ring.
    metrics:
        Optional shared :class:`~repro.serving.scheduler.ServingMetrics`;
        the fleet records front-end admission/latency into it (worker-side
        batch metrics are aggregated separately by :meth:`fleet_metrics`).
    store_dir:
        Parent directory for the shared tensor store (default: ``/dev/shm``
        when available).  The fleet creates a private subdirectory and
        removes it on drain.
    mp_context:
        ``multiprocessing`` start method (default ``spawn``: no inherited
        locks/threads, identical behavior on every platform).
    """

    def __init__(
        self,
        n_workers: int,
        bundle_path: str | Path | None = None,
        registry=None,
        model_name: str | None = None,
        model_version: str | None = None,
        cache_size: int = 4096,
        feature_backend: str | None = None,
        model_backend: str = "batched",
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        worker_queue: int | None = None,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
        metrics: ServingMetrics | None = None,
        store_dir: str | Path | None = None,
        mp_context: str = "spawn",
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if (bundle_path is None) == (registry is None):
            raise ValueError("exactly one of bundle_path / registry is required")
        if registry is not None and model_name is None:
            raise ValueError("registry mode requires model_name")
        self.n_workers = n_workers
        self.registry = registry
        self.model_name = model_name
        self.cache_size = cache_size
        self.feature_backend = feature_backend
        self.model_backend = model_backend
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.worker_queue = worker_queue or max(1, max_queue // n_workers)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._requested_version = model_version
        self._requested_bundle = Path(bundle_path) if bundle_path is not None else None
        self._requested_store_dir = Path(store_dir) if store_dir is not None else None
        self._ctx = multiprocessing.get_context(mp_context)
        self._ring = HashRing(list(range(n_workers)), replicas=ring_replicas)
        self._handles: dict[int, _WorkerHandle] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._rids = itertools.count(1)
        self._started = False
        self._draining = False
        self._closed = False
        self._promote_lock: asyncio.Lock | None = None
        self._store_dir: Path | None = None
        self._store_seq = 0
        self._swap_count = 0
        self._restarts = 0
        self._affinity_hits = 0
        self._spills = 0
        # Current fleet-wide model state (what a respawn serves).
        self._version: str | None = model_version
        self._fingerprint: str | None = None
        self._bundle_path_active: Path | None = self._requested_bundle
        self._store_path_active: Path | None = None

    # -------------------------------------------------- predictor facade

    @property
    def model_version(self) -> str | None:
        """Version tag the fleet currently serves (fleet-wide, post-commit)."""
        return self._version

    @property
    def fingerprint(self) -> str | None:
        """Model content fingerprint the fleet currently serves."""
        return self._fingerprint

    @property
    def swap_count(self) -> int:
        """How many fleet-wide two-phase swaps have completed."""
        return self._swap_count

    @property
    def pending(self) -> int:
        """Requests dispatched to workers and not yet answered."""
        return sum(handle.inflight for handle in self._handles.values())

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun."""
        return self._draining

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> "ServingFleet":
        """Pack the shared store and spawn the workers (idempotent)."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._promote_lock = asyncio.Lock()
        await self._loop.run_in_executor(None, self._start_sync)
        self._started = True
        return self

    def _start_sync(self) -> None:
        if self.registry is not None:
            version = self._requested_version or self.registry.current_version(
                self.model_name
            )
            if version is None:
                from repro.registry import RegistryError

                raise RegistryError(f"{self.model_name} has no promoted version")
            info = self.registry.verify(self.model_name, version)
            self._version = info.version
            self._fingerprint = info.fingerprint
            self._bundle_path_active = Path(info.path)
        self._store_dir = Path(
            tempfile.mkdtemp(
                prefix="repro-fleet-",
                dir=self._requested_store_dir or default_store_dir(),
            )
        )
        try:
            self._store_path_active = self._next_store_path()
            pack_bundle(self._bundle_path_active, self._store_path_active)
            for wid in range(self.n_workers):
                self._handles[wid] = self._spawn_worker(wid)
        except Exception:
            self._shutdown_processes()
            raise
        # Loose bundles carry no registry tags; adopt the identity the
        # first worker computed from the model itself.
        ready = next(iter(self._handles.values())).ready_payload
        if self._version is None:
            self._version = ready.get("version")
        if self._fingerprint is None:
            self._fingerprint = ready.get("fingerprint")

    def _next_store_path(self) -> Path:
        self._store_seq += 1
        return self._store_dir / f"tensors-{self._store_seq:04d}.bin"

    def _current_spec(self) -> WorkerSpec:
        return WorkerSpec(
            bundle_path=str(self._bundle_path_active),
            store_path=str(self._store_path_active),
            model_name=self.model_name,
            model_version=self._version,
            cache_size=self.cache_size,
            feature_backend=self.feature_backend,
            model_backend=self.model_backend,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            metrics_window=self.metrics._latencies.maxlen or 1024,
        )

    def _spawn_worker(self, wid: int) -> _WorkerHandle:
        """Spawn one worker and wait for its readiness report (blocking)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(child_conn, self._current_spec()),
            name=f"repro-fleet-{wid}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(SPAWN_TIMEOUT_SECONDS):
                raise FleetError(f"worker {wid} did not report ready in time")
            status, _rid, payload = parent_conn.recv()
            if status != "ok":
                raise FleetError(f"worker {wid} failed to start: {payload}")
        except (EOFError, OSError) as error:
            parent_conn.close()
            process.join(timeout=5)
            raise FleetError(f"worker {wid} died during startup: {error}") from error
        except FleetError:
            parent_conn.close()
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
            raise
        handle = _WorkerHandle(
            wid=wid, process=process, conn=parent_conn, pid=payload["pid"]
        )
        handle.ready_payload = payload
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle,),
            name=f"repro-fleet-reader-{wid}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    def _read_loop(self, handle: _WorkerHandle) -> None:
        """Reader thread: pump one worker's replies onto the event loop."""
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            if not self._post(self._on_message, handle, message):
                return
        self._post(self._on_worker_exit, handle)

    def _post(self, callback, *args) -> bool:
        try:
            self._loop.call_soon_threadsafe(callback, *args)
            return True
        except RuntimeError:
            return False  # event loop already closed (teardown)

    # ------------------------------------------------------------- delivery

    def _on_message(self, handle: _WorkerHandle, message: tuple) -> None:
        status, rid, payload = message
        entry = handle.pending.pop(rid, None)
        if entry is None:
            return  # reply to a cancelled/failed-over request
        future, kind, submitted_at, _n_columns = entry
        if kind == "predict":
            handle.inflight -= 1
            if status == "ok":
                self.metrics.record_request(time.monotonic() - submitted_at)
                payload = self._absorb_worker_info(handle, payload)
            else:
                self.metrics.record_error()
        if future.done():
            return
        if status == "ok":
            future.set_result(payload)
        else:
            future.set_exception(FleetError(f"worker {handle.wid}: {payload}"))

    def _absorb_worker_info(self, handle: _WorkerHandle, payload: tuple) -> tuple:
        """Fold a predict reply's observability info into the front end.

        Spans shipped by the batch's anchor request are re-parented here
        tagged ``wid:pid`` — a respawned worker shows its new pid — and the
        worker-measured queue wait (both endpoints on the worker's own
        monotonic clock; cross-process clock deltas never enter a metric)
        feeds the front end's queue-wait window and stage aggregates.
        """
        labels, version, info = payload
        tracer = get_tracer()
        wire_spans = info.pop("spans", None)
        if wire_spans:
            tracer.adopt(wire_spans, worker=f"{handle.wid}:{handle.pid}")
        wait = info.get("queue_wait")
        if wait is not None:
            self.metrics.record_queue_wait(wait)
            tracer.observe("queue.wait", wait)
        return (labels, version, info)

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        for future, kind, _at, _cols in handle.pending.values():
            if kind == "predict":
                handle.inflight -= 1
                self.metrics.record_error()
            if not future.done():
                future.set_exception(
                    FleetError(f"worker {handle.wid} exited mid-request")
                )
        handle.pending.clear()
        if self._draining or handle.retired or self._closed:
            return
        self._loop.create_task(self._restart_worker(handle.wid))

    async def _restart_worker(self, wid: int) -> None:
        """Respawn a crashed worker from the fleet's current model state."""
        for attempt in range(3):
            try:
                replacement = await self._loop.run_in_executor(
                    None, self._spawn_worker, wid
                )
            except Exception:
                await asyncio.sleep(0.2 * (attempt + 1))
                continue
            if self._draining or self._closed:
                replacement.retired = True
                await self._loop.run_in_executor(None, self._stop_one, replacement)
                return
            self._handles[wid] = replacement
            self._restarts += 1
            return

    # ------------------------------------------------------------ submission

    def _select_worker(self, table: Table) -> _WorkerHandle:
        """Route a table: preferred ring owner first, spill along the ring."""
        key = table_routing_key(table)
        preferred = self._ring.lookup(key)
        chosen: _WorkerHandle | None = None
        any_alive = False
        for wid in self._ring.walk(key):
            handle = self._handles.get(wid)
            if handle is None or not handle.alive:
                continue
            any_alive = True
            if handle.inflight < self.worker_queue:
                chosen = handle
                break
        if chosen is None:
            if not any_alive:
                raise FleetError("no live workers in the fleet")
            self.metrics.record_rejected_queue_full()
            raise QueueFullError(
                f"every live worker is at its queue bound ({self.worker_queue})"
            )
        if chosen.wid == preferred:
            self._affinity_hits += 1
        else:
            self._spills += 1
        return chosen

    def _dispatch_one(self, table: Table) -> asyncio.Future:
        """Admit + route + send one table; returns its response future."""
        if self._draining:
            self.metrics.record_rejected_draining()
            raise DrainingError("fleet is draining")
        if not self._started:
            raise FleetError("fleet is not started")
        if self.pending >= self.max_queue:
            self.metrics.record_rejected_queue_full()
            raise QueueFullError(
                f"fleet cannot admit more work (bound {self.max_queue})"
            )
        # The request's span context rides in the frame (as a plain tuple)
        # so the worker can record its spans under the same trace.
        tracer = get_tracer()
        context = tracer.current()
        wire_context = tuple(context) if context is not None else None
        # A worker can die between selection and send; fail over along the
        # ring instead of surfacing a broken pipe to the client.
        for _ in range(self.n_workers):
            with tracer.span("route") as route_span:
                handle = self._select_worker(table)
                route_span.meta = {"worker": handle.wid}
            rid = next(self._rids)
            future = self._loop.create_future()
            handle.pending[rid] = (
                future,
                "predict",
                time.monotonic(),
                table.n_columns,
            )
            handle.inflight += 1
            try:
                with handle.send_lock:
                    handle.conn.send(("predict", rid, table, wire_context))
            except (BrokenPipeError, OSError):
                handle.pending.pop(rid, None)
                handle.inflight -= 1
                handle.alive = False
                continue
            self.metrics.record_admitted()
            return future
        raise FleetError("no live workers in the fleet")

    async def submit_versioned(self, table: Table) -> tuple[list[str], str | None]:
        """Serve one table; resolves to ``(labels, model_version)``.

        The version is the tag of the model that served the request's
        batch on its worker (captured under that worker's swap lock), so
        responses stay honestly attributed during a rolling promote.
        """
        labels, version, _info = await self.submit_traced(table)
        return labels, version

    async def submit_traced(self, table: Table) -> tuple[list[str], str | None, dict]:
        """Serve one table; resolves to ``(labels, version, info)``.

        ``info`` mirrors :meth:`MicroBatcher.submit_traced`: the worker's
        batch size and the worker-side ``queue_wait`` in seconds (any
        shipped trace spans have already been folded into the front-end
        tracer by the time the future resolves).
        """
        return await self._dispatch_one(table)

    async def submit(self, table: Table) -> list[str]:
        """Serve one table; resolves to its per-column labels."""
        labels, _version = await self.submit_versioned(table)
        return labels

    async def submit_many_versioned(
        self, tables: Sequence[Table]
    ) -> list[tuple[list[str], str | None]]:
        """Serve several tables, admitted as one decision (all-or-nothing)."""
        futures: list[asyncio.Future] = []
        try:
            for table in tables:
                futures.append(self._dispatch_one(table))
        except Exception:
            for future in futures:
                future.cancel()
            raise
        results = await asyncio.gather(*futures, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return [(labels, version) for labels, version, _info in results]

    async def submit_many(self, tables: Sequence[Table]) -> list[list[str]]:
        """Serve several tables; resolves to their label lists."""
        results = await self.submit_many_versioned(tables)
        return [labels for labels, _version in results]

    # ------------------------------------------------------------- controls

    async def _control(self, handle: _WorkerHandle, command: str, payload) -> dict:
        """One control round-trip (prepare/commit/metrics/...) to a worker."""
        if not handle.alive:
            raise FleetError(f"worker {handle.wid} is not alive")
        rid = next(self._rids)
        future = self._loop.create_future()
        handle.pending[rid] = (future, command, time.monotonic(), 0)
        try:
            await self._loop.run_in_executor(
                None, self._send_locked, handle, (command, rid, payload)
            )
        except (BrokenPipeError, OSError) as error:
            handle.pending.pop(rid, None)
            raise FleetError(f"worker {handle.wid} unreachable: {error}") from error
        return await future

    @staticmethod
    def _send_locked(handle: _WorkerHandle, message: tuple) -> None:
        with handle.send_lock:
            handle.conn.send(message)

    def _live_handles(self) -> list[_WorkerHandle]:
        return [handle for handle in self._handles.values() if handle.alive]

    # ------------------------------------------------------------- promotion

    async def promote_version(self, version: str | None = None) -> dict:
        """Converge the whole fleet onto a registry version (two-phase).

        Phase 1 (*prepare*) stages the new model on every live worker —
        each maps the freshly packed shared store and rebuilds the model
        around it, while still serving the old one.  Only when every
        worker has staged successfully does phase 2 (*commit*) flip them;
        a prepare failure discards the staged state everywhere and leaves
        the fleet untouched.  Commits run under each worker's swap lock,
        so no batch anywhere in the fleet mixes model versions.
        """
        if self.registry is None:
            raise FleetError("promote_version requires registry mode")
        async with self._promote_lock:
            def resolve():
                target = version or self.registry.current_version(self.model_name)
                if target is None:
                    from repro.registry import RegistryError

                    raise RegistryError(f"{self.model_name} has no promoted version")
                return self.registry.verify(self.model_name, target)

            info = await self._loop.run_in_executor(None, resolve)
            return await self._two_phase_swap(
                Path(info.path), info.version, info.fingerprint
            )

    async def reload_bundle(self) -> dict:
        """Re-read the (loose) bundle directory and swap it fleet-wide."""
        if self.registry is not None:
            raise FleetError("reload_bundle is for bundle mode; use promote_version")
        async with self._promote_lock:
            return await self._two_phase_swap(self._bundle_path_active, None, None)

    async def _two_phase_swap(
        self, bundle_path: Path, version: str | None, fingerprint: str | None
    ) -> dict:
        store_path = self._next_store_path()
        await self._loop.run_in_executor(None, pack_bundle, bundle_path, store_path)
        token = f"swap-{self._store_seq}"
        live = self._live_handles()
        if not live:
            await self._loop.run_in_executor(None, remove_store, store_path)
            raise FleetError("no live workers to swap")
        prepare = {
            "token": token,
            "bundle_path": str(bundle_path),
            "store_path": str(store_path),
            "version": version,
        }
        staged = await asyncio.gather(
            *[self._control(handle, "prepare", prepare) for handle in live],
            return_exceptions=True,
        )
        failures = [r for r in staged if isinstance(r, BaseException)]
        if failures:
            await asyncio.gather(
                *[
                    self._control(handle, "discard", {"token": token})
                    for handle, result in zip(live, staged)
                    if not isinstance(result, BaseException)
                ],
                return_exceptions=True,
            )
            await self._loop.run_in_executor(None, remove_store, store_path)
            raise FleetError(
                f"prepare failed on {len(failures)}/{len(live)} workers: "
                f"{failures[0]}"
            )
        commits = await asyncio.gather(
            *[self._control(handle, "commit", {"token": token}) for handle in live],
            return_exceptions=True,
        )
        summaries = [c for c in commits if not isinstance(c, BaseException)]
        if not summaries:
            # Every committer died mid-commit; respawns will pick up the
            # new store below, so flip the fleet state anyway.
            summaries = [{"version": version, "fingerprint": fingerprint,
                          "changed": True, "swap_count": 0}]
        old_store = self._store_path_active
        self._store_path_active = store_path
        self._bundle_path_active = Path(bundle_path)
        self._version = version if version is not None else summaries[0].get("version")
        self._fingerprint = (
            fingerprint if fingerprint is not None
            else summaries[0].get("fingerprint")
        )
        self._swap_count += 1
        if old_store is not None:
            await self._loop.run_in_executor(None, remove_store, old_store)
        return {
            "version": self._version,
            "fingerprint": self._fingerprint,
            "changed": bool(summaries[0].get("changed", True)),
            "swap_count": self._swap_count,
            "workers": len(live),
            "commit_failures": len(commits) - len(summaries),
        }

    # ------------------------------------------------------------ observability

    async def fleet_metrics(self) -> dict:
        """Aggregate worker metrics: per-worker snapshots + fleet percentiles.

        Worker latency windows are merged *raw* (not averaged), so the
        reported p50/p95/p99 are true fleet-wide percentiles over the
        union of recent requests, not a mean of per-worker percentiles.
        """
        live = self._live_handles()
        replies = await asyncio.gather(
            *[self._control(handle, "metrics", None) for handle in live],
            return_exceptions=True,
        )
        workers = []
        merged: list[float] = []
        merged_waits: list[float] = []
        total_columns = 0
        total_batches = 0
        for handle, reply in zip(live, replies):
            if isinstance(reply, BaseException):
                workers.append({"worker": handle.wid, "error": str(reply)})
                continue
            snapshot = reply["metrics"]
            merged.extend(reply["latencies"])
            merged_waits.extend(reply.get("queue_waits", []))
            total_columns += snapshot["columns"]["served"]
            total_batches += snapshot["batches"]["count"]
            workers.append(
                {
                    "worker": handle.wid,
                    "pid": reply["pid"],
                    "inflight": handle.inflight,
                    "qps": snapshot["requests"]["qps"],
                    "columns_per_sec": snapshot["columns"]["columns_per_sec"],
                    "metrics": snapshot,
                    "stages": reply.get("stages", {}),
                    "cache": reply["cache"],
                    "predictor": reply["predictor"],
                }
            )
        merged.sort()
        merged_waits.sort()
        return {
            "size": self.n_workers,
            "alive": len(live),
            "restarts": self._restarts,
            "queue_depth": self.pending,
            "worker_queue": self.worker_queue,
            "routing": {
                "affinity_hits": self._affinity_hits,
                "spills": self._spills,
                "ring_replicas": self._ring.replicas,
            },
            "swap": {
                "version": self._version,
                "fingerprint": self._fingerprint,
                "swap_count": self._swap_count,
            },
            "latency_ms": {
                "window": len(merged),
                "p50": _percentile(merged, 0.50) * 1e3,
                "p95": _percentile(merged, 0.95) * 1e3,
                "p99": _percentile(merged, 0.99) * 1e3,
            },
            "queue_wait_ms": {
                "window": len(merged_waits),
                "p50": _percentile(merged_waits, 0.50) * 1e3,
                "p95": _percentile(merged_waits, 0.95) * 1e3,
                "p99": _percentile(merged_waits, 0.99) * 1e3,
            },
            "columns_served": total_columns,
            "batches": total_batches,
            "workers": workers,
        }

    def health(self) -> dict:
        """Liveness summary for ``/healthz`` (synchronous, no worker I/O)."""
        return {
            "size": self.n_workers,
            "alive": sum(1 for handle in self._handles.values() if handle.alive),
            "restarts": self._restarts,
            "draining": self._draining,
            "workers": [
                {
                    "worker": handle.wid,
                    "pid": handle.pid,
                    "alive": handle.alive,
                    "inflight": handle.inflight,
                }
                for handle in self._handles.values()
            ],
        }

    # -------------------------------------------------------------- shutdown

    async def drain(self) -> None:
        """Graceful fleet shutdown: finish in-flight work, then stop workers.

        Pipes are FIFO per worker, so the ``drain`` control is answered
        only after every previously dispatched predict — by the time the
        handshake completes, no request is left behind.
        """
        if self._closed:
            return
        self._draining = True
        live = self._live_handles()
        for handle in self._handles.values():
            handle.retired = True
        await asyncio.gather(
            *[self._control(handle, "drain", None) for handle in live],
            return_exceptions=True,
        )
        await self._loop.run_in_executor(None, self._shutdown_processes)
        self._closed = True

    def _stop_one(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=5)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=2)

    def _shutdown_processes(self) -> None:
        for handle in self._handles.values():
            self._stop_one(handle)
        if self._store_dir is not None:
            shutil.rmtree(self._store_dir, ignore_errors=True)
            self._store_dir = None

    def close(self) -> None:
        """Synchronous best-effort teardown (idempotent; used after drain).

        The server calls this through the predictor facade at the end of
        ``stop()``; a drained fleet has nothing left to do.  An undrained
        fleet (e.g. a test bailing out) gets its processes terminated and
        its shared store removed.
        """
        if self._closed:
            return
        self._draining = True
        self._closed = True
        for handle in self._handles.values():
            handle.retired = True
        self._shutdown_processes()
