"""The persistence protocol every stateful pipeline component implements.

A *stateful component* is anything whose fitted state must survive the
train-once / serve-many split: the featurizer, the embedding substrate, the
LDA intent estimator, the column networks, the CRF and the composed models.
Each one exposes three methods:

``config_dict()``
    JSON-serialisable constructor configuration — enough to rebuild an
    *unfitted* twin of the component.
``state_dict()``
    A flat ``str -> np.ndarray`` mapping of fitted state.  Composite
    components namespace their children with dotted prefixes
    (``featurizer.word.vectors``), so a whole model flattens into one
    mapping that round-trips through a single ``.npz`` file.
``load_state_dict(state)``
    Restores the fitted state in place, leaving the component ready to
    serve without retraining.

The protocol is structural (:class:`typing.Protocol`): components implement
the three methods without importing this module, so the model layers stay
free of serving dependencies.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["StatefulComponent"]


@runtime_checkable
class StatefulComponent(Protocol):
    """Structural interface of every persistable pipeline component.

    Examples:
        >>> from repro.features import ColumnFeaturizer
        >>> from repro.serving import StatefulComponent
        >>> isinstance(ColumnFeaturizer(), StatefulComponent)
        True
        >>> isinstance(object(), StatefulComponent)
        False
    """

    def config_dict(self) -> dict:
        """JSON-serialisable configuration to rebuild an unfitted twin."""
        ...

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of all fitted state, namespaced with dotted keys."""
        ...

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore fitted state produced by :meth:`state_dict`."""
        ...
