"""Micro-batching request scheduler for online serving.

One HTTP request carries one table with a handful of columns, but the whole
inference stack — the vectorized featurization engine, the batched column
network forward pass, the masked batch Viterbi decode
(:mod:`repro.models.batched`) — is built around *large* batches.  Serving
each request alone wastes that machinery on per-call Python and NumPy
overhead.  :class:`MicroBatcher` closes the gap: concurrent requests are
coalesced into batches under a ``max_batch_size`` / ``max_wait_ms`` policy
and dispatched together through one shared
:class:`~repro.serving.Predictor` call — end-to-end batched execution, from
featurization through structured decode — so the per-call fixed costs are
amortised across every request that happened to arrive in the same window.

The scheduler also owns the two properties an online system needs that a
library call does not:

* **admission control** — the pending queue is bounded (``max_queue``);
  requests beyond the bound fail fast with :class:`QueueFullError` (the
  HTTP layer maps this to ``429``) instead of building an unbounded backlog,
* **graceful drain** — :meth:`MicroBatcher.drain` stops admitting new work
  (:class:`DrainingError` → ``503``), serves everything already queued,
  then shuts the dispatch thread down, so a deploy never drops an accepted
  request.

Dispatch runs on a single worker thread (predictions are CPU-bound and the
:class:`~repro.serving.Predictor` caches are not thread-safe), which keeps
the asyncio event loop free to answer health checks and admit or reject
traffic while a batch is being served.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs import SpanContext, get_tracer
from repro.tables import Table

__all__ = [
    "DEFAULT_MAX_BATCH_SIZE",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_MAX_WAIT_MS",
    "DrainingError",
    "MicroBatcher",
    "QueueFullError",
    "ServingMetrics",
]

#: The default micro-batching policy, shared by the scheduler, the HTTP
#: server, the CLI and ``ExperimentConfig.serve_*`` so one edit retunes
#: every entry point consistently.
DEFAULT_MAX_BATCH_SIZE = 32
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_MAX_QUEUE = 256


class QueueFullError(RuntimeError):
    """Raised when the pending-request queue is at its admission bound."""


class DrainingError(RuntimeError):
    """Raised when a request arrives while the scheduler is draining."""


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 for an empty one)."""
    if not sorted_values:
        return 0.0
    position = round(fraction * (len(sorted_values) - 1))
    rank = min(len(sorted_values) - 1, max(0, position))
    return sorted_values[rank]


def _latency_summary(sorted_values: list[float]) -> dict:
    """The standard window/percentile block for a sorted latency window."""
    return {
        "window": len(sorted_values),
        "p50": _percentile(sorted_values, 0.50) * 1e3,
        "p95": _percentile(sorted_values, 0.95) * 1e3,
        "p99": _percentile(sorted_values, 0.99) * 1e3,
        "mean": (
            (sum(sorted_values) / len(sorted_values) * 1e3) if sorted_values else 0.0
        ),
        "max": (sorted_values[-1] * 1e3) if sorted_values else 0.0,
    }


class ServingMetrics:
    """Counters and latency accounting for the online serving path.

    Request latencies (admission to response) are kept in a bounded window
    so percentiles reflect *recent* traffic; batch sizes are kept as a full
    histogram so the batching policy's behaviour is visible at a glance.
    All numbers are exposed as one JSON-friendly dictionary by
    :meth:`snapshot` — this is exactly what ``GET /metrics`` returns.

    Recording and snapshotting are thread-safe: in a single-process server
    everything happens on the event loop, but a fleet front-end records
    completions from pipe-reader callbacks while worker processes snapshot
    their own instances concurrently, so every mutation runs under one
    internal lock (the contended section is a few counter bumps — far too
    small to show up next to a model forward pass).

    Examples:
        >>> metrics = ServingMetrics(window=4)
        >>> metrics.record_admitted()
        >>> metrics.record_batch(n_tables=1, n_columns=3, seconds=0.004)
        >>> metrics.record_request(latency_seconds=0.005)
        >>> metrics.record_rejected_queue_full()
        >>> snap = metrics.snapshot()
        >>> snap["requests"]["completed"], snap["requests"]["rejected_queue_full"]
        (1, 1)
        >>> snap["batches"]["size_histogram"]
        {'1': 1}
        >>> snap["columns"]["served"]
        3
    """

    def __init__(self, window: int = 1024) -> None:
        self.window = window
        self.started_at = time.monotonic()
        # Wall-clock start for restart detection from probes: monotonic
        # uptime resets silently on respawn, the epoch timestamp does not.
        self.started_at_unix = time.time()
        self.admitted = 0
        self.completed = 0
        self.errors = 0
        self.rejected_queue_full = 0
        self.rejected_draining = 0
        self.malformed = 0
        self.batches = 0
        self.tables_served = 0
        self.columns_served = 0
        self.batch_seconds = 0.0
        self.batch_size_histogram: dict[int, int] = {}
        self._latencies: deque[float] = deque(maxlen=window)
        self._queue_waits: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()

    # -------------------------------------------------------------- recording

    def record_admitted(self) -> None:
        """Count a request accepted into the pending queue."""
        with self._lock:
            self.admitted += 1

    def record_rejected_queue_full(self) -> None:
        """Count a request turned away at the admission bound (HTTP 429)."""
        with self._lock:
            self.rejected_queue_full += 1

    def record_rejected_draining(self) -> None:
        """Count a request turned away during graceful drain (HTTP 503)."""
        with self._lock:
            self.rejected_draining += 1

    def record_malformed(self) -> None:
        """Count a request rejected before admission (HTTP 400)."""
        with self._lock:
            self.malformed += 1

    def record_batch(self, n_tables: int, n_columns: int, seconds: float) -> None:
        """Account one dispatched batch (size, column volume, model time)."""
        with self._lock:
            self.batches += 1
            self.tables_served += n_tables
            self.columns_served += n_columns
            self.batch_seconds += seconds
            self.batch_size_histogram[n_tables] = (
                self.batch_size_histogram.get(n_tables, 0) + 1
            )

    def record_request(self, latency_seconds: float) -> None:
        """Account one completed request's admission-to-response latency."""
        with self._lock:
            self.completed += 1
            self._latencies.append(latency_seconds)

    def record_queue_wait(self, wait_seconds: float) -> None:
        """Account one request's admission-to-dispatch wait.

        Kept separate from total latency so queue pressure (batching
        linger, backlog) is distinguishable from model cost.
        """
        with self._lock:
            self._queue_waits.append(wait_seconds)

    def record_error(self) -> None:
        """Count a request that failed inside the model (HTTP 500)."""
        with self._lock:
            self.errors += 1

    # ------------------------------------------------------------- reporting

    def latencies(self) -> list[float]:
        """The raw latency window in seconds (arrival order, oldest first).

        A fleet front-end merges the windows of every worker before
        computing percentiles, so aggregated p50/p95/p99 are true fleet
        percentiles rather than an average of per-worker ones.
        """
        with self._lock:
            return list(self._latencies)

    def queue_waits(self) -> list[float]:
        """The raw queue-wait window in seconds (merged fleet-wide, like
        :meth:`latencies`)."""
        with self._lock:
            return list(self._queue_waits)

    def snapshot(self) -> dict:
        """One JSON-friendly dictionary of every tracked number."""
        with self._lock:
            uptime = max(time.monotonic() - self.started_at, 1e-9)
            latencies = sorted(self._latencies)
            queue_waits = sorted(self._queue_waits)
            mean_batch = self.tables_served / self.batches if self.batches else 0.0
            return {
                "uptime_seconds": uptime,
                "started_at": self.started_at_unix,
                "requests": {
                    "admitted": self.admitted,
                    "completed": self.completed,
                    "errors": self.errors,
                    "rejected_queue_full": self.rejected_queue_full,
                    "rejected_draining": self.rejected_draining,
                    "malformed": self.malformed,
                    "qps": self.completed / uptime,
                },
                "batches": {
                    "count": self.batches,
                    "mean_size": mean_batch,
                    "size_histogram": {
                        str(size): count
                        for size, count in sorted(self.batch_size_histogram.items())
                    },
                    "model_seconds_total": self.batch_seconds,
                },
                "latency_ms": _latency_summary(latencies),
                "queue_wait_ms": _latency_summary(queue_waits),
                "columns": {
                    "served": self.columns_served,
                    "tables": self.tables_served,
                    "columns_per_sec": self.columns_served / uptime,
                },
            }


@dataclass
class _Pending:
    """One admitted request waiting in the micro-batch queue."""

    table: Table
    future: asyncio.Future
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Trace context of the submitting request, captured at enqueue so the
    #: dispatch thread can parent its batch span under the (first)
    #: request's span even though it runs off the event loop.
    context: SpanContext | None = None


class MicroBatcher:
    """Coalesce concurrent predict requests into shared model batches.

    Parameters
    ----------
    predictor:
        Any object with a ``predict_tables(tables) -> list[list[str]]``
        method — normally a :class:`~repro.serving.Predictor`.
    max_batch_size:
        Largest number of tables dispatched in one model call.
    max_wait_ms:
        How long a newly arrived request may wait for companions before the
        partial batch is dispatched anyway.  This bounds the latency cost of
        batching: an isolated request is served after at most this delay.
    max_queue:
        Admission bound on the pending queue.  ``submit`` calls beyond it
        raise :class:`QueueFullError` immediately (fail fast beats an
        unbounded backlog).
    metrics:
        Optional shared :class:`ServingMetrics`; one is created if omitted.

    The batcher must be started inside a running event loop — either with
    ``await batcher.start()`` / ``await batcher.drain()`` or as an async
    context manager.

    Examples:
        >>> import asyncio
        >>> from repro.tables import Column, Table
        >>> class Echo:
        ...     def predict_tables(self, tables):
        ...         return [["x"] * table.n_columns for table in tables]
        >>> async def demo():
        ...     table = Table(columns=[Column(values=["a"]), Column(values=["b"])])
        ...     async with MicroBatcher(Echo(), max_batch_size=8) as batcher:
        ...         labels = await asyncio.gather(*[
        ...             batcher.submit(table) for _ in range(3)
        ...         ])
        ...     return labels, batcher.metrics.completed
        >>> labels, completed = asyncio.run(demo())
        >>> labels == [["x", "x"]] * 3 and completed == 3
        True
    """

    def __init__(
        self,
        predictor,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.predictor = predictor
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._queue: deque[_Pending] = deque()
        self._wake = asyncio.Event()
        self._draining = False
        self._task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------- lifecycle

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has been called."""
        return self._draining

    @property
    def pending(self) -> int:
        """Number of admitted requests not yet dispatched."""
        return len(self._queue)

    async def start(self) -> "MicroBatcher":
        """Start the dispatch loop (idempotent)."""
        if self._task is None:
            self._draining = False
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="microbatch-dispatch"
            )
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def drain(self) -> None:
        """Stop admitting work, serve the queue, then stop the loop.

        Every request admitted before the drain began still receives its
        response; requests submitted after it raise :class:`DrainingError`.
        """
        self._draining = True
        self._wake.set()
        if self._task is not None:
            try:
                await self._task
            except asyncio.CancelledError:
                # The dispatch loop was cancelled from outside (e.g. event
                # loop teardown); don't let queued futures hang forever.
                pass
            self._task = None
        while self._queue:  # only non-empty if the loop died mid-drain
            pending = self._queue.popleft()
            if not pending.future.done():
                pending.future.set_exception(
                    DrainingError("scheduler stopped before dispatch")
                )
            self.metrics.record_rejected_draining()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "MicroBatcher":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    # ------------------------------------------------------------- admission

    def _admit(self, n_tables: int) -> None:
        """Check admission for ``n_tables`` more tables (raises on refusal).

        Synchronous on purpose: callers enqueue immediately after this
        check without any intervening ``await``, so check-plus-enqueue is
        atomic with respect to the event loop and a multi-table admission
        really is all-or-nothing.
        """
        if self._draining:
            self.metrics.record_rejected_draining()
            raise DrainingError("scheduler is draining")
        if len(self._queue) + n_tables > self.max_queue:
            self.metrics.record_rejected_queue_full()
            raise QueueFullError(
                f"pending queue cannot admit {n_tables} more table(s) "
                f"(bound {self.max_queue})"
            )
        if self._task is None:
            raise RuntimeError("MicroBatcher is not started")

    def _enqueue(self, table: Table) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append(
            _Pending(table=table, future=future, context=get_tracer().current())
        )
        self.metrics.record_admitted()
        self._wake.set()
        return future

    async def submit(self, table: Table) -> list[str]:
        """Submit one table; resolves to its per-column labels.

        Raises :class:`DrainingError` during shutdown and
        :class:`QueueFullError` when the pending queue is at its bound.
        """
        labels, _version = await self.submit_versioned(table)
        return labels

    async def submit_versioned(self, table: Table) -> tuple[list[str], str | None]:
        """Submit one table; resolves to ``(labels, model_version)``.

        ``model_version`` is the version tag of the model that actually
        served this request's batch (``predictor.last_batch_version``, set
        under the predictor's swap lock), or None for predictors without
        versioning.  During a hot swap this is how a response can honestly
        say which model produced it.
        """
        labels, version, _info = await self.submit_traced(table)
        return labels, version

    async def submit_traced(self, table: Table) -> tuple[list[str], str | None, dict]:
        """Submit one table; resolves to ``(labels, version, info)``.

        ``info`` carries per-request observability detail the HTTP layer
        logs and exposes: the size of the batch that served the request and
        its admission-to-dispatch ``queue_wait`` in seconds.
        """
        self._admit(1)
        return await self._enqueue(table)

    async def submit_many(self, tables: Sequence[Table]) -> list[list[str]]:
        """Submit several tables as one admission decision.

        Admission is all-or-nothing and atomic: either every table is
        enqueued (before this coroutine first yields to the event loop) or
        the call raises and none of them are.
        """
        results = await self.submit_many_versioned(tables)
        return [labels for labels, _version in results]

    async def submit_many_versioned(
        self, tables: Sequence[Table]
    ) -> list[tuple[list[str], str | None]]:
        """Like :meth:`submit_many`, resolving ``(labels, version)`` pairs."""
        tables = list(tables)
        self._admit(len(tables))
        futures = [self._enqueue(table) for table in tables]
        results = await asyncio.gather(*futures, return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return [(labels, version) for labels, version, _info in results]

    # -------------------------------------------------------------- dispatch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            # One request in hand: linger for companions until the *oldest*
            # request has waited max_wait_ms since admission (skipped when
            # the batch is already full or we are draining).  Anchoring on
            # enqueue time means work that queued during an in-flight
            # dispatch is not taxed a second wait window.
            deadline = self._queue[0].enqueued_at + self.max_wait_ms / 1e3
            while not self._draining and len(self._queue) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch_size, len(self._queue)))
            ]
            await self._dispatch(loop, batch)

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, batch: list[_Pending]
    ) -> None:
        tables = [pending.table for pending in batch]
        started = time.monotonic()
        tracer = get_tracer()
        waits = [started - pending.enqueued_at for pending in batch]
        for wait in waits:
            self.metrics.record_queue_wait(wait)
            tracer.observe("queue.wait", wait)
        anchor = next(
            (pending.context for pending in batch if pending.context is not None),
            None,
        )

        def _predict() -> list[list[str]]:
            # run_in_executor does not carry contextvars across the thread
            # hop: adopt the first request's span as the batch anchor so
            # predictor-internal spans land in that request's trace.
            token = tracer.attach(anchor)
            try:
                with tracer.span("batch.predict", batch_size=len(tables)):
                    return self.predictor.predict_tables(tables)
            finally:
                tracer.detach(token)

        try:
            results = await loop.run_in_executor(self._executor, _predict)
        except Exception as error:  # surfaced per request as HTTP 500
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
                self.metrics.record_error()
            return
        seconds = time.monotonic() - started
        # Which model served this batch: predict_tables records it under the
        # predictor's swap lock, and this dispatch thread is the predictor's
        # only caller, so reading it here is race-free even mid-hot-swap.
        version = getattr(self.predictor, "last_batch_version", None)
        self.metrics.record_batch(
            n_tables=len(tables),
            n_columns=sum(table.n_columns for table in tables),
            seconds=seconds,
        )
        finished = time.monotonic()
        for pending, labels, wait in zip(batch, results, waits):
            if not pending.future.done():
                info = {"batch_size": len(tables), "queue_wait": wait}
                pending.future.set_result((labels, version, info))
            self.metrics.record_request(finished - pending.enqueued_at)
