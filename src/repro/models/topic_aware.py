"""The topic-aware column model (global context).

Extends the Base model with an additional Topic subnetwork whose input is
the table's topic vector from the pre-trained LDA intent estimator.  Every
column of a table shares the same topic vector, so the model learns how
column types correlate with table-level context (Section 3.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features import ColumnFeaturizer
from repro.models.base import TrainingConfig
from repro.models.column_network import GroupSpec, NetworkTrainer
from repro.models.sherlock import SherlockModel
from repro.tables import Table
from repro.topic import TableIntentEstimator
from repro.types import NUM_TYPES

__all__ = ["TopicAwareModel"]


class TopicAwareModel(SherlockModel):
    """Single-column model augmented with the table topic vector."""

    name = "TopicAware"

    def __init__(
        self,
        featurizer: ColumnFeaturizer | None = None,
        intent_estimator: TableIntentEstimator | None = None,
        config: TrainingConfig | None = None,
        n_classes: int = NUM_TYPES,
        n_topics: int = 64,
        compress_topic: bool = True,
    ) -> None:
        super().__init__(featurizer=featurizer, config=config, n_classes=n_classes)
        self.intent_estimator = intent_estimator or TableIntentEstimator(
            n_topics=n_topics, seed=self.config.seed
        )
        self.n_topics = self.intent_estimator.n_topics
        #: Whether the topic vector goes through its own compression
        #: subnetwork (the paper's architecture) or is concatenated directly.
        #: Direct concatenation can work better for small topic dimensions.
        self.compress_topic = compress_topic

    # ------------------------------------------------------------- training

    def fit(self, tables: Sequence[Table]) -> "TopicAwareModel":
        """Fit featurizer, intent estimator and network on labelled tables."""
        tables = list(tables)
        if not self.featurizer.is_fitted:
            self.featurizer.fit(tables)
        if not self.intent_estimator.is_fitted:
            # The LDA model is unsupervised: it sees values only (no labels).
            self.intent_estimator.fit([t.without_headers() for t in tables])

        features, targets, keep = self._labeled_training_arrays(tables)
        topics = self._column_topic_matrix(tables)[keep]

        topic_group = GroupSpec(
            name="topic", input_dim=self.n_topics, compress=self.compress_topic
        )
        self.network = self.build_network(extra_groups=[topic_group])
        self.trainer = NetworkTrainer(
            self.network,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
            batch_size=self.config.batch_size,
            n_epochs=self.config.n_epochs,
            class_weights=self._class_weights(targets),
            seed=self.config.seed,
        )
        inputs = self.split_features(features)
        inputs["topic"] = topics
        self.trainer.fit(inputs, targets)
        return self

    def _column_topic_matrix(self, tables: Sequence[Table]) -> np.ndarray:
        """Topic vector per *column* (columns of one table share the vector)."""
        rows: list[np.ndarray] = []
        for table in tables:
            vector = self.intent_estimator.topic_vector(table)
            rows.extend([vector] * table.n_columns)
        if not rows:
            return np.zeros((0, self.n_topics))
        return np.stack(rows)

    # ------------------------------------------------------------ inference

    def predict_proba_from_features(
        self, features: np.ndarray, topics: np.ndarray | None = None
    ) -> np.ndarray:
        """Class probabilities from pre-computed features and topic vectors."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        features = np.atleast_2d(features)
        if topics is None:
            topics = np.full(
                (features.shape[0], self.n_topics), 1.0 / self.n_topics
            )
        inputs = self.split_features(features)
        inputs["topic"] = np.atleast_2d(topics)
        return self.network.predict_proba(inputs)

    def predict_proba_matrix(
        self, features: np.ndarray, topics: np.ndarray | None = None
    ) -> np.ndarray:
        """Uniform batched-inference entry point (uses the topic matrix)."""
        return self.predict_proba_from_features(features, topics)

    def predict_proba_table(self, table: Table) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("model is not fitted")
        if not table.columns:
            return np.zeros((0, self.n_classes))
        features = self.featurizer.transform_table(table)
        topic = self.intent_estimator.topic_vector(table)
        topics = np.tile(topic, (features.shape[0], 1))
        return self.predict_proba_from_features(features, topics)

    def _batch_topic_rows(self, tables: Sequence[Table]) -> np.ndarray:
        """One topic row per column: each table's vector tiled over its columns."""
        return self._column_topic_matrix(tables)

    def column_embeddings(self, table: Table) -> np.ndarray:
        """Final hidden-layer activations per column (topic-aware)."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        features = self.featurizer.transform_table(table)
        topic = self.intent_estimator.topic_vector(table)
        inputs = self.split_features(features)
        inputs["topic"] = np.tile(topic, (features.shape[0], 1))
        return self.network.penultimate(inputs)

    # -------------------------------------------------------- serialisation

    def _extra_group_specs(self) -> list[GroupSpec]:
        return [
            GroupSpec(
                name="topic", input_dim=self.n_topics, compress=self.compress_topic
            )
        ]

    def _stateful_components(self) -> list[tuple[str, object]]:
        return super()._stateful_components() + [("intent", self.intent_estimator)]

    def config_dict(self) -> dict:
        config = super().config_dict()
        config["n_topics"] = self.n_topics
        config["compress_topic"] = self.compress_topic
        config["intent"] = self.intent_estimator.config_dict()
        return config
