"""A learned-representation ("featurisation-free") column model.

Section 6 of the paper fine-tunes BERT on raw column values and finds it
roughly matches Sherlock without manual feature engineering.  Pre-trained
BERT weights are not available offline, so this model implements the closest
trainable equivalent that exercises the same code path: tokens are embedded
with a hashing embedder, a single trainable attention-pooling layer builds a
column representation, and an MLP head classifies it.  No hand-crafted
features are used, and the model plugs into the rest of Sato through the
same :class:`~repro.models.base.ColumnModel` interface (it can serve as the
unary-potential provider of the CRF), demonstrating the architecture's
extensibility claim.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings import HashingEmbedder, tokenize_values
from repro.models.base import ColumnModel, TrainingConfig
from repro.nn import Adam, Linear, ReLU, Sequential, cross_entropy_loss, softmax
from repro.nn.parameter import Parameter
from repro.tables import Column, Table
from repro.types import NUM_TYPES, TYPE_TO_INDEX

__all__ = ["AttentionColumnModel"]


class AttentionColumnModel(ColumnModel):
    """Attention-pooled token-embedding classifier for single columns."""

    name = "LearnedRepr"

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dim: int = 64,
        max_tokens: int = 64,
        n_classes: int = NUM_TYPES,
        config: TrainingConfig | None = None,
    ) -> None:
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.max_tokens = max_tokens
        self.n_classes = n_classes
        self.config = config or TrainingConfig(n_epochs=20, learning_rate=1e-3)
        rng = np.random.default_rng(self.config.seed)
        self.embedder = HashingEmbedder(dim=embed_dim, seed=self.config.seed)
        scale = np.sqrt(2.0 / embed_dim)
        self.projection = Parameter(
            rng.normal(scale=scale, size=(embed_dim, hidden_dim)), name="attn.projection"
        )
        self.projection_bias = Parameter(np.zeros(hidden_dim), name="attn.bias")
        self.query = Parameter(
            rng.normal(scale=1.0 / np.sqrt(hidden_dim), size=hidden_dim), name="attn.query"
        )
        self.head = Sequential(
            Linear(hidden_dim, hidden_dim, rng=rng, name="head_1"),
            ReLU(),
            Linear(hidden_dim, n_classes, rng=rng, name="head_out"),
        )
        self._fitted = False

    # ------------------------------------------------------------- internals

    def _column_tokens(self, column: Column) -> np.ndarray:
        tokens = tokenize_values(column.values)[: self.max_tokens]
        if not tokens:
            tokens = ["<empty>"]
        return self.embedder.embed_sequence(tokens)

    def _encode(self, embeddings: np.ndarray) -> tuple[np.ndarray, dict]:
        """Attention-pool token embeddings into one column vector."""
        pre_activation = embeddings @ self.projection.data + self.projection_bias.data
        hidden = np.tanh(pre_activation)
        scores = hidden @ self.query.data
        scores = scores - scores.max()
        attention = np.exp(scores)
        attention /= attention.sum()
        pooled = attention @ hidden
        cache = {
            "embeddings": embeddings,
            "hidden": hidden,
            "attention": attention,
        }
        return pooled, cache

    def _encode_backward(self, grad_pooled: np.ndarray, cache: dict) -> None:
        embeddings = cache["embeddings"]
        hidden = cache["hidden"]
        attention = cache["attention"]
        grad_attention = hidden @ grad_pooled
        grad_scores = attention * (grad_attention - float(attention @ grad_attention))
        grad_hidden = attention[:, None] * grad_pooled[None, :] + np.outer(
            grad_scores, self.query.data
        )
        self.query.grad += hidden.T @ grad_scores
        grad_pre = grad_hidden * (1.0 - hidden ** 2)
        self.projection.grad += embeddings.T @ grad_pre
        self.projection_bias.grad += grad_pre.sum(axis=0)

    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""
        return [self.projection, self.projection_bias, self.query] + self.head.parameters()

    # -------------------------------------------------------------- training

    def fit(self, tables: Sequence[Table]) -> "AttentionColumnModel":
        """Train on all labelled columns of the given tables."""
        columns: list[Column] = []
        targets: list[int] = []
        for table in tables:
            for column in table.columns:
                if column.semantic_type in TYPE_TO_INDEX:
                    columns.append(column)
                    targets.append(TYPE_TO_INDEX[column.semantic_type])
        if not columns:
            raise ValueError("no labelled columns to train on")
        target_array = np.array(targets, dtype=np.int64)
        embeddings = [self._column_tokens(c) for c in columns]

        optimizer = Adam(
            self.parameters(),
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        rng = np.random.default_rng(self.config.seed)
        batch_size = max(1, self.config.batch_size)
        for _ in range(self.config.n_epochs):
            order = rng.permutation(len(columns))
            for start in range(0, len(order), batch_size):
                batch = order[start: start + batch_size]
                optimizer.zero_grad()
                pooled_rows = []
                caches = []
                for index in batch:
                    pooled, cache = self._encode(embeddings[index])
                    pooled_rows.append(pooled)
                    caches.append(cache)
                pooled_matrix = np.stack(pooled_rows)
                logits = self.head.forward(pooled_matrix, training=True)
                _, grad_logits = cross_entropy_loss(logits, target_array[batch])
                grad_pooled = self.head.backward(grad_logits)
                for row, cache in enumerate(caches):
                    self._encode_backward(grad_pooled[row], cache)
                optimizer.step()
        self._fitted = True
        return self

    # ------------------------------------------------------------- inference

    def predict_proba_table(self, table: Table) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        if not table.columns:
            return np.zeros((0, self.n_classes))
        pooled = np.stack(
            [self._encode(self._column_tokens(c))[0] for c in table.columns]
        )
        logits = self.head.forward(pooled, training=False)
        return softmax(logits, axis=1)

    def column_embeddings(self, table: Table) -> np.ndarray:
        """Attention-pooled column representations."""
        return np.stack(
            [self._encode(self._column_tokens(c))[0] for c in table.columns]
        )
