"""The multi-input feed-forward network shared by Sherlock and Sato.

Architecture (Section 3.1 of the paper):

* every high-dimensional feature group (Char, Word, Para and — for the
  topic-aware model — Topic) goes through its own compression subnetwork,
* the 27 Stat features bypass compression,
* subnetwork outputs are concatenated with Stat and fed to the primary
  network: two fully connected layers with ReLU, BatchNorm and Dropout,
  followed by a softmax output layer over the 78 semantic types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    Adam,
    BatchNorm1d,
    Dropout,
    Linear,
    ReLU,
    Sequential,
    cross_entropy_loss,
    softmax,
)
from repro.nn.parameter import Parameter

__all__ = ["GroupSpec", "MultiInputClassifier", "NetworkTrainer"]


@dataclass(frozen=True)
class GroupSpec:
    """One input group: its dimensionality and whether it is compressed."""

    name: str
    input_dim: int
    compress: bool = True


class MultiInputClassifier:
    """Multi-input MLP with per-group subnetworks and a primary network."""

    def __init__(
        self,
        groups: list[GroupSpec],
        n_classes: int,
        subnet_dim: int = 64,
        hidden_dim: int = 128,
        dropout: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not groups:
            raise ValueError("at least one input group is required")
        self.groups = list(groups)
        self.n_classes = n_classes
        self.subnet_dim = subnet_dim
        self.hidden_dim = hidden_dim
        self.dropout = dropout
        self.seed = seed
        rng = np.random.default_rng(seed)

        self.subnetworks: dict[str, Sequential | None] = {}
        concat_dim = 0
        for group in self.groups:
            if group.compress:
                subnet = Sequential(
                    Linear(group.input_dim, subnet_dim, rng=rng, name=f"sub_{group.name}_1"),
                    ReLU(),
                    Dropout(dropout, rng=rng),
                    Linear(subnet_dim, subnet_dim, rng=rng, name=f"sub_{group.name}_2"),
                    ReLU(),
                )
                self.subnetworks[group.name] = subnet
                concat_dim += subnet_dim
            else:
                self.subnetworks[group.name] = None
                concat_dim += group.input_dim
        self.concat_dim = concat_dim

        self.primary = Sequential(
            Linear(concat_dim, hidden_dim, rng=rng, name="primary_1"),
            ReLU(),
            BatchNorm1d(hidden_dim, name="primary_bn1"),
            Dropout(dropout, rng=rng),
            Linear(hidden_dim, hidden_dim, rng=rng, name="primary_2"),
            ReLU(),
        )
        self.output_layer = Linear(hidden_dim, n_classes, rng=rng, name="output")
        self._last_slices: list[tuple[str, slice]] | None = None

    # -------------------------------------------------------------- forward

    def _concat(self, inputs: dict[str, np.ndarray], training: bool) -> np.ndarray:
        parts: list[np.ndarray] = []
        slices: list[tuple[str, slice]] = []
        offset = 0
        for group in self.groups:
            if group.name not in inputs:
                raise KeyError(f"missing input group {group.name!r}")
            x = np.asarray(inputs[group.name], dtype=np.float64)
            subnet = self.subnetworks[group.name]
            part = subnet.forward(x, training=training) if subnet is not None else x
            parts.append(part)
            slices.append((group.name, slice(offset, offset + part.shape[1])))
            offset += part.shape[1]
        self._last_slices = slices
        return np.concatenate(parts, axis=1)

    def penultimate(self, inputs: dict[str, np.ndarray], training: bool = False) -> np.ndarray:
        """Activations of the last hidden layer (column embeddings)."""
        concatenated = self._concat(inputs, training)
        return self.primary.forward(concatenated, training=training)

    def forward(self, inputs: dict[str, np.ndarray], training: bool = False) -> np.ndarray:
        """Class logits for a batch of columns."""
        hidden = self.penultimate(inputs, training=training)
        return self.output_layer.forward(hidden, training=training)

    def predict_proba(self, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Class probabilities for a batch of columns."""
        return softmax(self.forward(inputs, training=False), axis=1)

    # ------------------------------------------------------------- backward

    def backward(self, grad_logits: np.ndarray) -> None:
        """Back-propagate the loss gradient through the whole network."""
        if self._last_slices is None:
            raise RuntimeError("forward must be called before backward")
        grad_hidden = self.output_layer.backward(grad_logits)
        grad_concat = self.primary.backward(grad_hidden)
        for name, group_slice in self._last_slices:
            subnet = self.subnetworks[name]
            if subnet is not None:
                subnet.backward(grad_concat[:, group_slice])

    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""
        parameters: list[Parameter] = []
        for group in self.groups:
            subnet = self.subnetworks[group.name]
            if subnet is not None:
                parameters.extend(subnet.parameters())
        parameters.extend(self.primary.parameters())
        parameters.extend(self.output_layer.parameters())
        return parameters

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable constructor configuration (architecture)."""
        return {
            "groups": [
                {"name": g.name, "input_dim": g.input_dim, "compress": g.compress}
                for g in self.groups
            ],
            "n_classes": self.n_classes,
            "subnet_dim": self.subnet_dim,
            "hidden_dim": self.hidden_dim,
            "dropout": self.dropout,
            "seed": self.seed,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable state of all subnetworks and the primary network."""
        state: dict[str, np.ndarray] = {}
        for group in self.groups:
            subnet = self.subnetworks[group.name]
            if subnet is not None:
                for key, value in subnet.state_dict().items():
                    state[f"subnet.{group.name}.{key}"] = value
        for key, value in self.primary.state_dict().items():
            state[f"primary.{key}"] = value
        for key, value in self.output_layer.state_dict().items():
            state[f"output.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        for group in self.groups:
            subnet = self.subnetworks[group.name]
            if subnet is not None:
                prefix = f"subnet.{group.name}."
                subnet.load_state_dict(
                    {k[len(prefix):]: v for k, v in state.items() if k.startswith(prefix)}
                )
        self.primary.load_state_dict(
            {k[len("primary."):]: v for k, v in state.items() if k.startswith("primary.")}
        )
        self.output_layer.load_state_dict(
            {k[len("output."):]: v for k, v in state.items() if k.startswith("output.")}
        )


class NetworkTrainer:
    """Mini-batch Adam trainer for :class:`MultiInputClassifier`."""

    def __init__(
        self,
        network: MultiInputClassifier,
        learning_rate: float = 1e-4,
        weight_decay: float = 1e-4,
        batch_size: int = 64,
        n_epochs: int = 100,
        class_weights: np.ndarray | None = None,
        seed: int = 0,
        verbose: bool = False,
    ) -> None:
        self.network = network
        self.optimizer = Adam(
            network.parameters(),
            learning_rate=learning_rate,
            weight_decay=weight_decay,
        )
        self.batch_size = batch_size
        self.n_epochs = n_epochs
        self.class_weights = class_weights
        self.seed = seed
        self.verbose = verbose
        self.history: list[float] = []

    def fit(self, inputs: dict[str, np.ndarray], targets: np.ndarray) -> "NetworkTrainer":
        """Train the network on featurised columns."""
        targets = np.asarray(targets, dtype=np.int64)
        n_samples = targets.shape[0]
        if n_samples == 0:
            return self
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch_idx = order[start: start + self.batch_size]
                batch_inputs = {
                    name: array[batch_idx] for name, array in inputs.items()
                }
                batch_targets = targets[batch_idx]
                self.optimizer.zero_grad()
                logits = self.network.forward(batch_inputs, training=True)
                loss, grad = cross_entropy_loss(
                    logits, batch_targets, class_weights=self.class_weights
                )
                self.network.backward(grad)
                self.optimizer.step()
                epoch_loss += loss
                n_batches += 1
            self.history.append(epoch_loss / max(1, n_batches))
            if self.verbose:  # pragma: no cover - logging only
                print(f"epoch loss={self.history[-1]:.4f}")
        return self
