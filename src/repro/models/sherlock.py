"""The single-column Base model (Sherlock re-implementation).

A multi-input feed-forward network over the Char / Word / Para / Stat
feature groups of a single column.  This is the paper's ``Base`` baseline
and the foundation the topic-aware model extends.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Sequence

import numpy as np

from repro.features import ColumnFeaturizer
from repro.models.base import ColumnModel, TrainingConfig
from repro.models.batched import split_by_table
from repro.models.column_network import GroupSpec, MultiInputClassifier, NetworkTrainer
from repro.tables import Table
from repro.types import NUM_TYPES, TYPE_TO_INDEX

__all__ = ["SherlockModel"]


class SherlockModel(ColumnModel):
    """Single-column semantic type classifier (the Base model)."""

    name = "Base"

    def __init__(
        self,
        featurizer: ColumnFeaturizer | None = None,
        config: TrainingConfig | None = None,
        n_classes: int = NUM_TYPES,
    ) -> None:
        self.featurizer = featurizer or ColumnFeaturizer()
        self.config = config or TrainingConfig()
        self.n_classes = n_classes
        self.network: MultiInputClassifier | None = None
        self.trainer: NetworkTrainer | None = None

    # ------------------------------------------------------------- plumbing

    def _group_specs(self) -> list[GroupSpec]:
        specs = []
        for group in self.featurizer.groups:
            specs.append(
                GroupSpec(
                    name=group.name,
                    input_dim=group.size,
                    compress=group.name != "stat",
                )
            )
        return specs

    def set_feature_backend(
        self, backend: str, workers: int | None = None
    ) -> "SherlockModel":
        """Switch the featurization backend (loop / vectorized [+ workers]).

        Purely a runtime-performance knob: both backends produce the same
        features to floating-point round-off, so it is safe to train with
        one and serve with the other.
        """
        self.featurizer.set_backend(backend, workers)
        return self

    def split_features(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Split a full feature matrix into per-group inputs."""
        features = np.atleast_2d(features)
        return {
            group.name: features[:, group.slice]
            for group in self.featurizer.groups
        }

    def _class_weights(self, targets: np.ndarray) -> np.ndarray | None:
        if not self.config.use_class_weights:
            return None
        counts = np.bincount(targets, minlength=self.n_classes).astype(np.float64)
        weights = np.zeros(self.n_classes, dtype=np.float64)
        seen = counts > 0
        weights[seen] = counts[seen].sum() / (seen.sum() * counts[seen])
        # Clip so that extremely rare classes do not dominate the loss.
        return np.clip(weights, 0.1, 10.0)

    def _labeled_training_arrays(
        self, tables: Sequence[Table]
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        feature_matrix = self.featurizer.transform_tables(list(tables))
        keep = [
            i
            for i, label in enumerate(feature_matrix.labels)
            if label in TYPE_TO_INDEX
        ]
        features = feature_matrix.matrix[keep]
        targets = np.array(
            [TYPE_TO_INDEX[feature_matrix.labels[i]] for i in keep], dtype=np.int64
        )
        return features, targets, keep

    # ------------------------------------------------------------- training

    def build_network(self, extra_groups: list[GroupSpec] | None = None) -> MultiInputClassifier:
        """Construct the multi-input network (optionally with extra groups)."""
        specs = self._group_specs()
        if extra_groups:
            specs = specs + list(extra_groups)
        return MultiInputClassifier(
            groups=specs,
            n_classes=self.n_classes,
            subnet_dim=self.config.subnet_dim,
            hidden_dim=self.config.hidden_dim,
            dropout=self.config.dropout,
            seed=self.config.seed,
        )

    def fit(self, tables: Sequence[Table]) -> "SherlockModel":
        """Fit the featurizer and train the network on labelled tables."""
        tables = list(tables)
        if not self.featurizer.is_fitted:
            self.featurizer.fit(tables)
        features, targets, _ = self._labeled_training_arrays(tables)
        self.network = self.build_network()
        self.trainer = NetworkTrainer(
            self.network,
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
            batch_size=self.config.batch_size,
            n_epochs=self.config.n_epochs,
            class_weights=self._class_weights(targets),
            seed=self.config.seed,
        )
        self.trainer.fit(self.split_features(features), targets)
        return self

    # ------------------------------------------------------------ inference

    def predict_proba_from_features(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities from pre-computed column features."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        return self.network.predict_proba(self.split_features(features))

    def predict_proba_matrix(
        self, features: np.ndarray, topics: np.ndarray | None = None
    ) -> np.ndarray:
        """Uniform batched-inference entry point.

        Accepts the features of any number of columns (possibly spanning many
        tables) plus an optional per-column topic matrix, which the base
        model ignores.  Subclasses with extra input groups override this.
        """
        return self.predict_proba_from_features(features)

    def predict_proba_table(self, table: Table) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("model is not fitted")
        if not table.columns:
            return np.zeros((0, self.n_classes))
        features = self.featurizer.transform_table(table)
        return self.predict_proba_from_features(features)

    def _batch_topic_rows(self, tables: Sequence[Table]) -> np.ndarray | None:
        """Per-column topic rows for a batch (None for topic-free models)."""
        return None

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Column-wise class scores for many tables from one forward pass.

        Every column of every table is featurized in one batched call and
        pushed through the network as a single matrix (one matmul per
        layer); the stacked score matrix is then split back per table.
        """
        if self.network is None:
            raise RuntimeError("model is not fitted")
        tables = list(tables)
        columns = [column for table in tables for column in table.columns]
        if not columns:
            return [np.zeros((0, self.n_classes)) for _ in tables]
        features = self.featurizer.transform_columns(columns)
        probabilities = self.predict_proba_matrix(
            features, self._batch_topic_rows(tables)
        )
        return split_by_table(probabilities, tables)

    def column_embeddings(self, table: Table) -> np.ndarray:
        """Final hidden-layer activations per column."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        features = self.featurizer.transform_table(table)
        return self.network.penultimate(self.split_features(features))

    # -------------------------------------------------------- serialisation

    def _extra_group_specs(self) -> list[GroupSpec]:
        """Input groups beyond the featurizer's (none for the base model)."""
        return []

    def _stateful_components(self) -> list[tuple[str, object]]:
        """Named sub-components persisted alongside the network."""
        return [("featurizer", self.featurizer)]

    def config_dict(self) -> dict:
        """JSON-serialisable configuration of the whole column model.

        The network architecture entry is informational (the loader rebuilds
        the network from the featurizer's group layout), but it makes the
        manifest self-describing for inspection and debugging.
        """
        config = {
            "type": type(self).__name__,
            "n_classes": self.n_classes,
            "training": asdict(self.config),
            "featurizer": self.featurizer.config_dict(),
        }
        if self.network is not None:
            config["network"] = self.network.config_dict()
        return config

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state: sub-components + network weights."""
        if self.network is None:
            raise RuntimeError("model is not fitted")
        state: dict[str, np.ndarray] = {}
        for name, component in self._stateful_components():
            for key, value in component.state_dict().items():
                state[f"{name}.{key}"] = value
        for key, value in self.network.state_dict().items():
            state[f"network.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a fitted model without retraining.

        Sub-components are restored first, then the network is rebuilt from
        the (restored) featurizer's group layout and its weights loaded.
        """
        for name, component in self._stateful_components():
            prefix = f"{name}."
            component.load_state_dict(
                {k[len(prefix):]: v for k, v in state.items() if k.startswith(prefix)}
            )
        self.network = self.build_network(extra_groups=self._extra_group_specs())
        self.network.load_state_dict(
            {k[len("network."):]: v for k, v in state.items() if k.startswith("network.")}
        )
