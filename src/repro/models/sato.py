"""The full Sato model and its ablation variants.

Sato = a column-wise model (topic-aware by default) providing unary
potentials + a linear-chain CRF over the columns of each table providing the
local context.  The four paper configurations are:

============== =========== ================
variant        topic-aware structured (CRF)
============== =========== ================
``Base``       no          no
``SatoNoTopic``no          yes
``SatoNoStruct``yes        no
``Sato``       yes         yes
============== =========== ================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Sequence

import numpy as np

from repro.corpus.statistics import adjacent_cooccurrence_matrix
from repro.crf import CRFTrainer, CRFTrainingExample, LinearChainCRF
from repro.features import ColumnFeaturizer
from repro.models.base import ColumnModel, TrainingConfig
from repro.models.sherlock import SherlockModel
from repro.models.topic_aware import TopicAwareModel
from repro.tables import Table
from repro.types import INDEX_TO_TYPE, NUM_TYPES, TYPE_TO_INDEX

__all__ = ["MODEL_BACKENDS", "SatoConfig", "SatoModel"]

_LOG_EPS = 1e-12

#: Inference backends for batch prediction: ``loop`` decodes one table at a
#: time (the parity oracle), ``batched`` runs one forward pass and one
#: masked Viterbi over the whole batch (see :mod:`repro.models.batched`).
MODEL_BACKENDS = ("loop", "batched")


@dataclass
class SatoConfig:
    """Configuration of the full Sato pipeline."""

    #: Include the topic-aware (global context) module.
    use_topic: bool = True
    #: Include the structured-prediction (CRF / local context) module.
    use_struct: bool = True
    #: Topic-vector dimensionality (paper default: 400).
    n_topics: int = 64
    #: Column-network training hyper-parameters.
    training: TrainingConfig = field(default_factory=TrainingConfig)
    #: CRF training hyper-parameters (paper: lr 1e-2, 15 epochs, batch 10).
    crf_learning_rate: float = 1e-2
    crf_epochs: int = 15
    crf_batch_size: int = 10
    #: Initialise CRF pairwise potentials from adjacent co-occurrence counts.
    crf_cooccurrence_init: bool = True
    seed: int = 0


class SatoModel(ColumnModel):
    """Hybrid semantic type detection model (topic-aware + CRF)."""

    def __init__(
        self,
        config: SatoConfig | None = None,
        featurizer: ColumnFeaturizer | None = None,
        column_model: SherlockModel | None = None,
    ) -> None:
        self.config = config or SatoConfig()
        if column_model is not None:
            self.column_model = column_model
        elif self.config.use_topic:
            self.column_model = TopicAwareModel(
                featurizer=featurizer,
                config=self.config.training,
                n_topics=self.config.n_topics,
            )
        else:
            self.column_model = SherlockModel(
                featurizer=featurizer, config=self.config.training
            )
        self.crf: LinearChainCRF | None = None
        self.name = self._variant_name()
        #: Batch-inference backend (runtime knob, not fitted state).
        self.model_backend = "batched"
        self._batched_core = None

    def _variant_name(self) -> str:
        if self.config.use_topic and self.config.use_struct:
            return "Sato"
        if self.config.use_topic:
            return "SatoNoStruct"
        if self.config.use_struct:
            return "SatoNoTopic"
        return "Base"

    # ------------------------------------------------------------ variants

    @classmethod
    def full(cls, **kwargs) -> "SatoModel":
        """The complete Sato model (topic + CRF)."""
        return cls(config=SatoConfig(use_topic=True, use_struct=True, **kwargs))

    @classmethod
    def no_topic(cls, **kwargs) -> "SatoModel":
        """Ablation: CRF over Base outputs, no topic features."""
        return cls(config=SatoConfig(use_topic=False, use_struct=True, **kwargs))

    @classmethod
    def no_struct(cls, **kwargs) -> "SatoModel":
        """Ablation: topic-aware prediction only, no CRF."""
        return cls(config=SatoConfig(use_topic=True, use_struct=False, **kwargs))

    @classmethod
    def base(cls, **kwargs) -> "SatoModel":
        """The single-column Base model wrapped in the Sato interface."""
        return cls(config=SatoConfig(use_topic=False, use_struct=False, **kwargs))

    def set_feature_backend(self, backend: str, workers: int | None = None) -> "SatoModel":
        """Switch the column featurization backend for training and serving.

        Delegates to the column model's featurizer; see
        :meth:`repro.features.featurizer.ColumnFeaturizer.set_backend`.
        """
        self.column_model.set_feature_backend(backend, workers)
        return self

    def set_model_backend(self, backend: str) -> "SatoModel":
        """Switch the batch-inference backend (``loop`` or ``batched``).

        Purely a runtime-performance knob: both backends decode the same
        labels (the per-table loop is the batched path's parity oracle), so
        it never changes results — only how much Python runs per table.
        Applies to the batch entry points (:meth:`predict_tables`,
        :meth:`predict_proba_tables`); single-table calls always loop.
        """
        if backend not in MODEL_BACKENDS:
            raise ValueError(
                f"unknown model backend {backend!r}; expected one of {MODEL_BACKENDS}"
            )
        self.model_backend = backend
        return self

    # ------------------------------------------------------------- training

    def fit(self, tables: Sequence[Table]) -> "SatoModel":
        """Train the column-wise model, then (optionally) the CRF layer."""
        tables = list(tables)
        self.column_model.fit(tables)
        if self.config.use_struct:
            self._fit_crf(tables)
        return self

    def fit_structured(self, tables: Sequence[Table]) -> "SatoModel":
        """Train only the CRF layer, assuming the column model is already fitted.

        Useful when plugging in an externally trained column model (the
        Section 6 extensibility scenario) where only the structured layer
        still needs training.
        """
        if not self.config.use_struct:
            raise ValueError("fit_structured requires use_struct=True")
        self._fit_crf(list(tables))
        return self

    def _fit_crf(self, tables: Sequence[Table]) -> None:
        multi = [t for t in tables if t.n_columns > 1 and t.is_fully_labeled]
        if self.config.crf_cooccurrence_init and multi:
            cooccurrence = adjacent_cooccurrence_matrix(multi)
            self.crf = LinearChainCRF.from_cooccurrence(cooccurrence, scale=0.5)
        else:
            self.crf = LinearChainCRF(n_states=NUM_TYPES)
        examples = []
        for table in multi:
            unary = self._unary_potentials(table)
            labels = np.array(
                [TYPE_TO_INDEX[c.semantic_type] for c in table.columns], dtype=np.int64
            )
            examples.append(CRFTrainingExample(unary=unary, labels=labels))
        trainer = CRFTrainer(
            self.crf,
            learning_rate=self.config.crf_learning_rate,
            n_epochs=self.config.crf_epochs,
            batch_size=self.config.crf_batch_size,
            seed=self.config.seed,
        )
        trainer.fit(examples)

    def _unary_potentials(self, table: Table) -> np.ndarray:
        """Log of the normalised column-wise prediction scores."""
        probabilities = self.column_model.predict_proba_table(table)
        return np.log(probabilities + _LOG_EPS)

    # ------------------------------------------------------------ inference

    def _crf_active(self, probabilities: np.ndarray) -> bool:
        return (
            self.config.use_struct
            and self.crf is not None
            and probabilities.shape[0] > 1
        )

    def marginals_from_proba(self, probabilities: np.ndarray) -> np.ndarray:
        """Structured per-column distributions given column-wise scores.

        With the CRF enabled and more than one column these are the CRF
        posterior marginals; otherwise the scores pass through unchanged.
        The batched serving path computes column-wise scores for many tables
        in one forward pass and then calls this per table.
        """
        if self._crf_active(probabilities):
            assert self.crf is not None
            unary = np.log(probabilities + _LOG_EPS)
            return self.crf.marginals(unary)
        return probabilities

    def labels_from_proba(self, probabilities: np.ndarray) -> list[str]:
        """Decoded semantic types given column-wise scores (Viterbi when on)."""
        if self._crf_active(probabilities):
            assert self.crf is not None
            unary = np.log(probabilities + _LOG_EPS)
            indices = self.crf.viterbi(unary)
        else:
            indices = probabilities.argmax(axis=1)
        return [INDEX_TO_TYPE[int(i)] for i in indices]

    def _core(self):
        """The lazily built batched inference core (shared across calls)."""
        if self._batched_core is None:
            from repro.models.batched import BatchedInferenceCore

            self._batched_core = BatchedInferenceCore(self)
        return self._batched_core

    def labels_from_proba_batch(
        self, probabilities: Sequence[np.ndarray]
    ) -> list[list[str]]:
        """Batched structured decode given per-table column-wise scores.

        Packs every CRF-eligible table into one padded unary tensor and
        decodes all chains with a single masked Viterbi recurrence;
        remaining columns are decoded by one shared ``argmax``.  Decoded
        labels are bit-identical to calling :meth:`labels_from_proba` per
        table.  This is the serving hot path behind
        ``model_backend="batched"``.
        """
        return self._core().labels_from_proba(probabilities)

    def predict_proba_table(self, table: Table) -> np.ndarray:
        """Per-column type distributions.

        With the CRF enabled and a multi-column table, these are the CRF
        posterior marginals; otherwise they are the column-wise scores.
        """
        return self.marginals_from_proba(self.column_model.predict_proba_table(table))

    def predict_table(self, table: Table) -> list[str]:
        """Predicted semantic type per column (Viterbi when the CRF is on)."""
        return self.labels_from_proba(self.column_model.predict_proba_table(table))

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Predicted types for a batch of tables (honours ``model_backend``).

        Under the default ``batched`` backend this is one featurization
        call, one column-network forward pass and one masked Viterbi over
        the whole batch; under ``loop`` it decodes per table (the parity
        oracle).
        """
        tables = list(tables)
        if self.model_backend == "loop":
            return [self.predict_table(table) for table in tables]
        return self._core().predict_tables(tables)

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Structured per-column distributions for a batch of tables.

        The ``batched`` backend batches featurization and the forward pass;
        the marginal decode itself stays per table (see
        :meth:`repro.models.batched.BatchedInferenceCore.predict_proba_tables`).
        """
        tables = list(tables)
        if self.model_backend == "loop":
            return [self.predict_proba_table(table) for table in tables]
        return self._core().predict_proba_tables(tables)

    def column_embeddings(self, table: Table) -> np.ndarray:
        """Column embeddings from the column-wise model (before the CRF)."""
        return self.column_model.column_embeddings(table)

    # -------------------------------------------------------- serialisation

    def config_dict(self) -> dict:
        """JSON-serialisable configuration of the whole pipeline."""
        config = asdict(self.config)
        return {
            "variant": self.name,
            "sato": config,
            "column_model": self.column_model.config_dict(),
            "crf": self.crf.config_dict() if self.crf is not None else None,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serialisable fitted state: column model + optional CRF."""
        state = {
            f"column_model.{key}": value
            for key, value in self.column_model.state_dict().items()
        }
        if self.crf is not None:
            for key, value in self.crf.state_dict().items():
                state[f"crf.{key}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a fitted model (column model + CRF) without retraining."""
        self.column_model.load_state_dict(
            {
                k[len("column_model."):]: v
                for k, v in state.items()
                if k.startswith("column_model.")
            }
        )
        crf_state = {
            k[len("crf."):]: v for k, v in state.items() if k.startswith("crf.")
        }
        if crf_state:
            self.crf = LinearChainCRF(n_states=NUM_TYPES)
            self.crf.load_state_dict(crf_state)
        else:
            self.crf = None

    def save(self, path) -> None:
        """Persist this fitted model as an artifact bundle directory."""
        from repro.serving import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path) -> "SatoModel":
        """Load a fitted model from an artifact bundle directory."""
        from repro.serving import load_model

        return load_model(path)
