"""Model interfaces and shared training configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.tables import Table
from repro.types import INDEX_TO_TYPE

__all__ = ["TrainingConfig", "ColumnModel"]


@dataclass
class TrainingConfig:
    """Hyper-parameters of the column-wise neural network training.

    Defaults follow Section 4.3 of the paper (Adam, learning rate 1e-4,
    weight decay 1e-4, 100 epochs); tests and fast benchmarks lower
    ``n_epochs`` and the hidden sizes.
    """

    n_epochs: int = 100
    learning_rate: float = 1e-4
    weight_decay: float = 1e-4
    batch_size: int = 64
    subnet_dim: int = 64
    hidden_dim: int = 128
    dropout: float = 0.3
    use_class_weights: bool = True
    seed: int = 0


class ColumnModel:
    """Interface of every column-wise semantic type predictor.

    A column model is *fitted* on labelled tables and then predicts, for any
    table, a probability distribution over the 78 semantic types for each of
    its columns.  Table-level prediction methods receive the whole table so
    that context-aware models can use it; single-column models simply ignore
    the other columns.
    """

    #: Human-readable model name used in reports.
    name: str = "column-model"

    def fit(self, tables: Sequence[Table]) -> "ColumnModel":
        """Train the model on labelled tables."""
        raise NotImplementedError

    def predict_proba_table(self, table: Table) -> np.ndarray:
        """Per-column class probabilities, shape ``(n_columns, n_types)``."""
        raise NotImplementedError

    def predict_table(self, table: Table) -> list[str]:
        """Predicted semantic type label for each column of the table."""
        probabilities = self.predict_proba_table(table)
        indices = probabilities.argmax(axis=1)
        return [INDEX_TO_TYPE[int(i)] for i in indices]

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Predict types for a sequence of tables."""
        return [self.predict_table(t) for t in tables]

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Per-column class probabilities for a sequence of tables.

        The default loops per table; models built on the shared column
        network override this with a single batched forward pass (see
        :mod:`repro.models.batched`).
        """
        return [self.predict_proba_table(t) for t in tables]

    def column_embeddings(self, table: Table) -> np.ndarray:
        """Final-layer activations per column (used for the Col2Vec analysis).

        Models that do not expose embeddings raise ``NotImplementedError``.
        """
        raise NotImplementedError
