"""Padded/masked batched model-core inference (the ``batched`` backend).

The structured-prediction stage is the last per-table hot path of the
serving stack: featurization is vectorized (``repro.features.engine``) and
requests are micro-batched (``repro.serving.scheduler``), but the column
network forward and the CRF Viterbi decode historically ran one table at a
time.  This module batches both across a whole micro-batch:

* **Forward** — every column of every table is flattened onto one *column
  axis* (table boundaries recorded as offsets), featurized in a single
  batched call and pushed through the column network as one matrix, so each
  layer is one matmul over ``sum(n_columns)`` rows regardless of how many
  tables the batch holds.
* **Decode** — the per-table column-wise score matrices are packed into a
  padded ``(n_tables, max_cols, n_types)`` log-unary tensor plus a
  ``lengths`` vector, and :meth:`~repro.crf.LinearChainCRF.viterbi_batch`
  decodes every chain simultaneously with length masking: one vectorised
  recurrence step per column *position* instead of per column.  Padded
  positions are never read, so the pad value is irrelevant.

The per-table loop (``SatoModel.predict_table``) is kept as the bit-exact
parity oracle: for the same fitted model the batched path produces the same
decoded labels, including on 1-column tables and tie-breaking unaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import span
from repro.tables import Table
from repro.types import INDEX_TO_TYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sato imports us)
    from repro.models.sato import SatoModel

__all__ = ["pad_unaries", "split_by_table", "BatchedInferenceCore"]

#: Mirrors ``repro.models.sato._LOG_EPS`` (kept literal to avoid an import
#: cycle): the same epsilon must be used so batched log-unaries are
#: bit-identical to the loop path's.
_LOG_EPS = 1e-12


def split_by_table(rows: np.ndarray, tables: Sequence[Table]) -> list[np.ndarray]:
    """Split a column-axis row matrix back into one slice per table.

    Inverse of flattening a batch of tables onto the column axis: ``rows``
    holds one row per column of every table, in table order; the returned
    views carry ``tables[i].n_columns`` rows each.

    Examples:
        >>> import numpy as np
        >>> from repro.tables import Column, Table
        >>> one = Table(columns=[Column(values=["a"])])
        >>> two = Table(columns=[Column(values=["b"]), Column(values=["c"])])
        >>> parts = split_by_table(np.arange(3)[:, None], [one, two])
        >>> [part.ravel().tolist() for part in parts]
        [[0], [1, 2]]
    """
    split: list[np.ndarray] = []
    offset = 0
    for table in tables:
        split.append(rows[offset : offset + table.n_columns])
        offset += table.n_columns
    return split


def pad_unaries(
    probabilities: Sequence[np.ndarray], n_states: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-table score matrices into a padded log-unary tensor.

    Parameters
    ----------
    probabilities:
        One ``(n_columns, n_states)`` column-wise score matrix per table.
    n_states:
        Number of semantic types (the tensor's last axis).

    Returns
    -------
    ``(unaries, lengths)`` where ``unaries`` has shape ``(n_tables,
    max_cols, n_states)`` holding ``log(p + eps)`` in real positions and
    zeros in padding, and ``lengths`` holds each table's true column count.
    The scatter is fully vectorised: one concatenation, one ``log`` over
    every real row, one fancy-indexed assignment.

    Examples:
        >>> import numpy as np
        >>> unaries, lengths = pad_unaries(
        ...     [np.full((1, 2), 0.5), np.full((3, 2), 0.25)], n_states=2
        ... )
        >>> unaries.shape, lengths.tolist()
        ((2, 3, 2), [1, 3])
        >>> bool(np.all(unaries[0, 1:] == 0.0))  # padding rows stay zero
        True
        >>> bool(np.allclose(unaries[1], np.log(0.25 + 1e-12)))
        True
    """
    lengths = np.array([p.shape[0] for p in probabilities], dtype=np.int64)
    n_tables = len(lengths)
    max_cols = int(lengths.max()) if n_tables else 0
    unaries = np.zeros((n_tables, max_cols, n_states), dtype=np.float64)
    total = int(lengths.sum())
    if total:
        flat = np.concatenate([np.asarray(p, dtype=np.float64) for p in probabilities])
        rows = np.repeat(np.arange(n_tables), lengths)
        starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
        positions = np.arange(total) - starts
        unaries[rows, positions] = np.log(flat + _LOG_EPS)
    return unaries, lengths


class BatchedInferenceCore:
    """Batched forward + batched structured decode over a fitted Sato model.

    Wraps a fitted :class:`~repro.models.sato.SatoModel` and serves whole
    batches of tables through one column-network forward pass and one
    masked :meth:`~repro.crf.LinearChainCRF.viterbi_batch` decode.  This is
    what ``model_backend="batched"`` routes to in
    :meth:`SatoModel.predict_tables` and in the serving
    :class:`~repro.serving.Predictor`.

    Examples:
        >>> from repro.corpus import CorpusConfig, CorpusGenerator
        >>> from repro.models import SatoConfig, SatoModel, TrainingConfig
        >>> from repro.models.batched import BatchedInferenceCore
        >>> tables = CorpusGenerator(CorpusConfig(n_tables=6, seed=2)).generate()
        >>> config = SatoConfig(use_topic=False, use_struct=False,
        ...                     training=TrainingConfig(n_epochs=1,
        ...                                             subnet_dim=4,
        ...                                             hidden_dim=8))
        >>> model = SatoModel(config=config).fit(tables)
        >>> core = BatchedInferenceCore(model)
        >>> batched = core.predict_tables(tables[:3])
        >>> batched == [model.predict_table(t) for t in tables[:3]]
        True
    """

    def __init__(self, model: "SatoModel") -> None:
        self.model = model

    # ------------------------------------------------------------- forward

    def columnwise_proba(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Column-wise scores per table from one batched forward pass."""
        return self.model.column_model.predict_proba_tables(tables)

    # -------------------------------------------------------------- decode

    def labels_from_proba(self, probabilities: Sequence[np.ndarray]) -> list[list[str]]:
        """Decode every table's labels given per-table column-wise scores.

        Tables the CRF applies to (structured variant, fitted CRF, more
        than one column) are decoded together by ``viterbi_batch`` over one
        padded tensor; all remaining columns are decoded by a single
        ``argmax`` over their concatenation.  Both halves are bit-identical
        to the per-table loop (``SatoModel.labels_from_proba``).
        """
        model = self.model
        probabilities = list(probabilities)
        results: list[list[str] | None] = [None] * len(probabilities)

        structured = [
            i for i, proba in enumerate(probabilities) if model._crf_active(proba)
        ]
        structured_set = set(structured)
        independent = [i for i in range(len(probabilities)) if i not in structured_set]

        if independent:
            with span("decode.argmax", n_tables=len(independent)):
                matrices = [probabilities[i] for i in independent]
                lengths = [matrix.shape[0] for matrix in matrices]
                if sum(lengths):
                    flat = np.argmax(np.concatenate(matrices, axis=0), axis=1)
                else:
                    flat = np.zeros(0, dtype=np.int64)
                offset = 0
                for i, length in zip(independent, lengths):
                    results[i] = [
                        INDEX_TO_TYPE[int(k)] for k in flat[offset : offset + length]
                    ]
                    offset += length

        if structured:
            assert model.crf is not None
            unaries, lengths = pad_unaries(
                [probabilities[i] for i in structured], model.crf.n_states
            )
            decoded_chains = model.crf.viterbi_batch(unaries, lengths)
            for i, decoded in zip(structured, decoded_chains):
                results[i] = [INDEX_TO_TYPE[int(k)] for k in decoded]

        return results  # type: ignore[return-value]

    # ------------------------------------------------------------- serving

    def predict_tables(self, tables: Sequence[Table]) -> list[list[str]]:
        """Decoded semantic types per table, end-to-end batched."""
        return self.labels_from_proba(self.columnwise_proba(tables))

    def predict_proba_tables(self, tables: Sequence[Table]) -> list[np.ndarray]:
        """Structured per-column distributions per table.

        The forward pass is batched; the CRF *marginal* decode (unlike
        Viterbi) still runs per table — posterior marginals need a full
        forward-backward per chain and are off the label-serving hot path.
        """
        return [
            self.model.marginals_from_proba(proba)
            for proba in self.columnwise_proba(tables)
        ]
