"""Semantic type detection models.

* :class:`~repro.models.sherlock.SherlockModel` — the single-column Base
  model (multi-input feed-forward network over Char/Word/Para/Stat).
* :class:`~repro.models.topic_aware.TopicAwareModel` — Base plus a topic
  subnetwork fed by the table intent estimator (global context).
* :class:`~repro.models.sato.SatoModel` — the full hybrid model: a
  column-wise model providing unary potentials plus a linear-chain CRF over
  the table's columns (local context).  ``variant()`` builds the paper's
  ablations (``SatoNoTopic``, ``SatoNoStruct``, ``Base``).
* :class:`~repro.models.attention.AttentionColumnModel` — the
  "featurisation-free" learned-representation substitute for the BERT
  experiment of Section 6, plugged in through the same interface.
* :mod:`repro.models.batched` — the padded/masked batched inference core
  behind ``model_backend="batched"``: one column-network forward pass and
  one masked Viterbi decode for a whole batch of tables.
"""

from repro.models.base import ColumnModel, TrainingConfig
from repro.models.batched import BatchedInferenceCore, pad_unaries, split_by_table
from repro.models.column_network import MultiInputClassifier, NetworkTrainer
from repro.models.sherlock import SherlockModel
from repro.models.topic_aware import TopicAwareModel
from repro.models.sato import MODEL_BACKENDS, SatoConfig, SatoModel
from repro.models.attention import AttentionColumnModel

__all__ = [
    "ColumnModel",
    "TrainingConfig",
    "MultiInputClassifier",
    "NetworkTrainer",
    "SherlockModel",
    "TopicAwareModel",
    "SatoConfig",
    "SatoModel",
    "MODEL_BACKENDS",
    "BatchedInferenceCore",
    "pad_unaries",
    "split_by_table",
    "AttentionColumnModel",
]
